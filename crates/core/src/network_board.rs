//! The network board: cell transmit scheduling and receive reassembly.
//!
//! Transmit implements the priority principles concretely:
//!
//! * **P2 (audio over video)**: audio segments are always taken ahead of
//!   video (the fig 3.7 split feeds two queues; audio drains first).
//! * **P3 (newest streams first)**: when the video backlog exceeds its
//!   cap, segments are dropped from the *longest-open* stream, so "data
//!   streams that have been open the longest should be degraded first".
//! * **§4.2's known flaw, reproduced**: in [`TxMode::NonInterleaved`] mode
//!   a segment's cells go out back-to-back, so "video segments can hold up
//!   following audio segments, introducing up to 20ms of jitter";
//!   [`TxMode::Interleaved`] is the cell-level round-robin ablation.

// check:hot-path: every transmitted and received segment passes through here.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use pandora_atm::{cells_gather, SlabReassembler, Vci};
use pandora_buffers::{ByteSlab, Pool, Report, ReportClass};
use pandora_metrics::{Histogram, RateLimiter};
use pandora_segment::{wire, SlabSegment, StreamId};
use pandora_sim::{alt2, Either2, LinkSender, Receiver, Sender, SimDuration, SimTime, Spawner};

use crate::config::TxMode;
use crate::msg::SegMsg;
use crate::server_board::NetMsg;

/// Shared transmit statistics.
#[derive(Clone, Default)]
pub struct NetOutStats {
    inner: Rc<RefCell<NetOutInner>>,
}

#[derive(Default)]
struct NetOutInner {
    audio_segments: u64,
    video_segments: u64,
    cells: u64,
    /// Video segments dropped by the P3 (oldest-first) policy, per stream.
    p3_drops: HashMap<StreamId, u64>,
    /// Time audio segments waited from arrival at the scheduler to the
    /// start of transmission (the §4.2 hold-up).
    audio_wait_ns: Histogram,
}

impl NetOutStats {
    /// Audio segments transmitted.
    pub fn audio_segments(&self) -> u64 {
        self.inner.borrow().audio_segments
    }

    /// Video segments transmitted.
    pub fn video_segments(&self) -> u64 {
        self.inner.borrow().video_segments
    }

    /// Cells put on the wire.
    pub fn cells(&self) -> u64 {
        self.inner.borrow().cells
    }

    /// P3 drops charged to one stream.
    pub fn p3_drops(&self, stream: StreamId) -> u64 {
        self.inner
            .borrow()
            .p3_drops
            .get(&stream)
            .copied()
            .unwrap_or(0)
    }

    /// Total P3 drops.
    pub fn p3_drops_total(&self) -> u64 {
        self.inner.borrow().p3_drops.values().sum()
    }

    /// Distribution of audio hold-up behind in-flight segments, ns.
    pub fn audio_wait_ns(&self) -> Histogram {
        self.inner.borrow().audio_wait_ns.clone()
    }
}

struct VideoQueue {
    opened_at: SimTime,
    segments: VecDeque<NetMsg>,
}

/// Policy configuration of the network output process.
#[derive(Debug, Clone, Copy)]
pub struct NetOutConfig {
    /// Transmit scheduling mode.
    pub mode: TxMode,
    /// Video backlog cap before the drop policy engages.
    pub video_backlog_cap: usize,
    /// Principle 2: drain audio ahead of video. When `false`, audio is
    /// only served once no video is pending (the conformance ablation).
    pub audio_priority: bool,
    /// Principle 3: on overflow, drop from the longest-open stream. When
    /// `false`, the newest stream is the victim instead.
    pub p3_oldest_first: bool,
}

impl NetOutConfig {
    /// The paper's policies with the given mode and backlog cap.
    pub fn new(mode: TxMode, video_backlog_cap: usize) -> Self {
        NetOutConfig {
            mode,
            video_backlog_cap,
            audio_priority: true,
            p3_oldest_first: true,
        }
    }
}

/// Spawns the network output process.
///
/// `audio` and `video` are the drains of the fig 3.7 decoupling buffers;
/// `link` is the box's ATM attachment.
#[allow(clippy::too_many_arguments)]
pub fn spawn_net_out(
    spawner: &Spawner,
    name: &str,
    config: NetOutConfig,
    audio: Receiver<NetMsg>,
    video: Receiver<NetMsg>,
    link: LinkSender<pandora_atm::Cell>,
    pool: Pool<SlabSegment>,
    reports: Sender<Report>,
    report_min_period: SimDuration,
) -> NetOutStats {
    let NetOutConfig {
        mode,
        video_backlog_cap,
        audio_priority,
        p3_oldest_first,
    } = config;
    let stats = NetOutStats::default();
    let s = stats.clone();
    let proc_name = format!("net-out:{name}");
    let task_name = proc_name.clone();
    spawner.spawn(&task_name, async move {
        let mut cell_seq: HashMap<Vci, u32> = HashMap::new();
        // Reusable header scratch region: headers are encoded here and
        // scatter-gathered with the slab payload, so no contiguous wire
        // image of the segment is ever built.
        let mut scratch: Vec<u8> = Vec::with_capacity(128);
        let mut audio_q: VecDeque<(NetMsg, SimTime)> = VecDeque::new();
        let mut video_q: HashMap<StreamId, VideoQueue> = HashMap::new();
        let mut video_backlog = 0usize;
        let mut limiter = RateLimiter::new(report_min_period.as_nanos());
        // In interleaved mode, the cells of the segment currently being
        // transmitted; audio may preempt between cells.
        let mut in_flight: VecDeque<pandora_atm::Cell> = VecDeque::new();
        loop {
            // Take audio from the decoupling buffer only as transmission
            // slots open up: the fig 3.7 buffer (not this process) is where
            // audio queues, so its size limit is meaningful and overflow is
            // dropped (and counted) at the switch.
            while audio_q.len() < 2 {
                match audio.try_recv() {
                    Some(m) => audio_q.push_back((m, pandora_sim::now())),
                    None => break,
                }
            }
            while let Some(m) = video.try_recv() {
                admit_video(
                    m,
                    &mut video_q,
                    &mut video_backlog,
                    video_backlog_cap,
                    p3_oldest_first,
                    &pool,
                    &s,
                    &reports,
                    &mut limiter,
                    &proc_name,
                )
                .await;
            }
            // In non-interleaved mode a started segment finishes before
            // anything else is considered — the §4.2 hold-up.
            if mode == TxMode::NonInterleaved {
                if let Some(cell) = in_flight.pop_front() {
                    s.inner.borrow_mut().cells += 1;
                    if link.send(cell).await.is_err() {
                        return;
                    }
                    continue;
                }
            }
            // Audio next (Principle 2). Audio segments are small (a cell or
            // two), so they are sent directly in both modes. With the
            // principle disabled, audio only gets a turn once no video is
            // staged or queued.
            let audio_turn = audio_priority || (in_flight.is_empty() && video_backlog == 0);
            if audio_turn {
                if let Some((m, queued_at)) = audio_q.pop_front() {
                    let wait = pandora_sim::now() - queued_at;
                    s.inner
                        .borrow_mut()
                        .audio_wait_ns
                        .record(wait.as_nanos() as f64);
                    s.inner.borrow_mut().audio_segments += 1;
                    let cells = segment_cells(&m, &pool, &mut cell_seq, &mut scratch);
                    for cell in cells {
                        s.inner.borrow_mut().cells += 1;
                        if link.send(cell).await.is_err() {
                            return;
                        }
                    }
                    continue;
                }
            }
            // In interleaved mode, staged video cells go out one at a time
            // so audio can cut in between them.
            if let Some(cell) = in_flight.pop_front() {
                s.inner.borrow_mut().cells += 1;
                if link.send(cell).await.is_err() {
                    return;
                }
                continue;
            }
            if let Some(m) = pop_video(&mut video_q, &mut video_backlog) {
                s.inner.borrow_mut().video_segments += 1;
                in_flight.extend(segment_cells(&m, &pool, &mut cell_seq, &mut scratch));
                continue;
            }
            // Nothing pending: block until either input produces.
            match alt2(&audio, &video).await {
                Some(Ok(Either2::A(m))) => audio_q.push_back((m, pandora_sim::now())),
                Some(Ok(Either2::B(m))) => {
                    admit_video(
                        m,
                        &mut video_q,
                        &mut video_backlog,
                        video_backlog_cap,
                        p3_oldest_first,
                        &pool,
                        &s,
                        &reports,
                        &mut limiter,
                        &proc_name,
                    )
                    .await
                }
                _ => return,
            }
        }
    });
    stats
}

/// Turns one pooled segment into its cells and releases the descriptor.
///
/// This is the paper's *output* copy and the only place TX bytes move:
/// the headers are encoded into `scratch` and scatter-gathered with the
/// payload, still in its slab, directly into cell payloads.
fn segment_cells(
    m: &NetMsg,
    pool: &Pool<SlabSegment>,
    cell_seq: &mut HashMap<Vci, u32>,
    scratch: &mut Vec<u8>,
) -> Vec<pandora_atm::Cell> {
    let cells = pool.with(m.desc, |seg| {
        let hdr = seg.header.header_wire_bytes();
        scratch.resize(hdr, 0);
        wire::encode_header_into(&seg.header, scratch);
        let seq = cell_seq.entry(m.vci).or_insert(0);
        let cells = seg
            .payload
            .copy_out_with(|payload| cells_gather(m.vci, scratch, payload, *seq));
        *seq = seq.wrapping_add(cells.len() as u32);
        cells
    });
    pool.release(m.desc);
    cells
}

#[allow(clippy::too_many_arguments)]
async fn admit_video(
    m: NetMsg,
    video_q: &mut HashMap<StreamId, VideoQueue>,
    backlog: &mut usize,
    cap: usize,
    oldest_first: bool,
    pool: &Pool<SlabSegment>,
    s: &NetOutStats,
    reports: &Sender<Report>,
    limiter: &mut RateLimiter,
    proc_name: &str,
) {
    let q = video_q.entry(m.stream).or_insert_with(|| VideoQueue {
        opened_at: m.opened_at,
        segments: VecDeque::new(),
    });
    q.opened_at = m.opened_at;
    q.segments.push_back(m);
    *backlog += 1;
    while *backlog > cap {
        // Principle 3: degrade the stream that has been open the longest
        // (disabled: the newest stream takes the hit instead).
        let candidates = video_q.iter().filter(|(_, q)| !q.segments.is_empty());
        let victim = if oldest_first {
            candidates.min_by_key(|(_, q)| q.opened_at)
        } else {
            candidates.max_by_key(|(_, q)| q.opened_at)
        }
        .map(|(&id, _)| id);
        let Some(victim) = victim else { break };
        let vq = video_q.get_mut(&victim).expect("victim exists");
        if let Some(dropped) = vq.segments.pop_front() {
            pool.release(dropped.desc);
            *backlog -= 1;
            *s.inner.borrow_mut().p3_drops.entry(victim).or_insert(0) += 1;
            let now = pandora_sim::now();
            let key = format!("p3:{victim}");
            if limiter.allow(&key, now.as_nanos()) {
                let total = s.p3_drops(victim);
                let _ = reports
                    .send(Report::new(
                        now,
                        proc_name,
                        ReportClass::Overload,
                        format!(
                            "video backlog over {cap}: degraded stream {victim} ({total} dropped)"
                        ),
                    ))
                    .await;
            }
        }
    }
}

fn pop_video(video_q: &mut HashMap<StreamId, VideoQueue>, backlog: &mut usize) -> Option<NetMsg> {
    // Serve streams round-robin-ish by taking from the newest stream
    // first (the complement of the drop rule keeps new calls lively).
    let id = video_q
        .iter()
        .filter(|(_, q)| !q.segments.is_empty())
        .max_by_key(|(_, q)| q.opened_at)
        .map(|(&id, _)| id)?;
    let q = video_q.get_mut(&id)?;
    let m = q.segments.pop_front();
    if m.is_some() {
        *backlog -= 1;
    }
    m
}

/// Shared receive statistics.
#[derive(Clone, Default)]
pub struct NetInStats {
    inner: Rc<RefCell<NetInInner>>,
}

#[derive(Default)]
struct NetInInner {
    segments: u64,
    decode_errors: u64,
    frames_discarded: u64,
    pool_exhausted: u64,
}

impl NetInStats {
    /// Segments delivered to the switch.
    pub fn segments(&self) -> u64 {
        self.inner.borrow().segments
    }

    /// Frames that decoded to garbage (wire errors).
    pub fn decode_errors(&self) -> u64 {
        self.inner.borrow().decode_errors
    }

    /// Frames discarded at reassembly (cell loss).
    pub fn frames_discarded(&self) -> u64 {
        self.inner.borrow().frames_discarded
    }

    /// Segments dropped because the buffer pool was exhausted.
    pub fn pool_exhausted(&self) -> u64 {
        self.inner.borrow().pool_exhausted
    }
}

/// Spawns the network input handler: cells → frames → segments → switch.
///
/// Cells are reassembled directly into regions of `slab` (the box's one
/// *input* copy); decoding then only parses headers, leaving the payload
/// in place as a refcounted slice. The input handler is lossless up to
/// the switch (drops happen at the decoupling buffers downstream,
/// §3.7.1); only pool or slab exhaustion — the paper's "serious fault" —
/// discards here, with a report.
#[allow(clippy::too_many_arguments)]
pub fn spawn_net_in(
    spawner: &Spawner,
    name: &str,
    cells: Receiver<pandora_atm::Cell>,
    to_switch: Sender<SegMsg>,
    pool: Pool<SlabSegment>,
    slab: ByteSlab,
    reports: Sender<Report>,
    report_min_period: SimDuration,
) -> NetInStats {
    let stats = NetInStats::default();
    let s = stats.clone();
    let proc_name = format!("net-in:{name}");
    let task_name = proc_name.clone();
    spawner.spawn(&task_name, async move {
        let mut reasm = SlabReassembler::new(slab);
        let mut limiter = RateLimiter::new(report_min_period.as_nanos());
        let mut last_discarded = 0u64;
        let mut last_alloc_failures = 0u64;
        while let Ok(cell) = cells.recv().await {
            let Some((vci, frame)) = reasm.push(cell) else {
                let d = reasm.frames_discarded();
                let af = reasm.alloc_failures();
                if af != last_alloc_failures {
                    last_alloc_failures = af;
                    last_discarded = d;
                    s.inner.borrow_mut().frames_discarded = d;
                    s.inner.borrow_mut().pool_exhausted += 1;
                    let now = pandora_sim::now();
                    if limiter.allow("pool", now.as_nanos()) {
                        let _ = reports
                            .send(Report::new(
                                now,
                                &proc_name,
                                ReportClass::Fault,
                                "reassembly slab exhausted, discarding",
                            ))
                            .await;
                    }
                } else if d != last_discarded {
                    last_discarded = d;
                    s.inner.borrow_mut().frames_discarded = d;
                    let now = pandora_sim::now();
                    if limiter.allow("reasm", now.as_nanos()) {
                        let _ = reports
                            .send(Report::new(
                                now,
                                &proc_name,
                                ReportClass::Error,
                                format!("cell loss: {d} frames discarded"),
                            ))
                            .await;
                    }
                }
                continue;
            };
            let segment = match wire::decode_slab(&frame) {
                Ok(seg) => seg,
                Err(e) => {
                    s.inner.borrow_mut().decode_errors += 1;
                    let now = pandora_sim::now();
                    if limiter.allow("decode", now.as_nanos()) {
                        let _ = reports
                            .send(Report::new(
                                now,
                                &proc_name,
                                ReportClass::Error,
                                format!("segment decode failed: {e}"),
                            ))
                            .await;
                    }
                    continue;
                }
            };
            match pool.try_alloc(segment) {
                Ok(desc) => {
                    s.inner.borrow_mut().segments += 1;
                    if to_switch
                        .send(SegMsg {
                            stream: vci.stream(),
                            desc,
                        })
                        .await
                        .is_err()
                    {
                        return;
                    }
                }
                Err(_) => {
                    s.inner.borrow_mut().pool_exhausted += 1;
                    let now = pandora_sim::now();
                    if limiter.allow("pool", now.as_nanos()) {
                        let _ = reports
                            .send(Report::new(
                                now,
                                &proc_name,
                                ReportClass::Fault,
                                "segment pool exhausted, discarding",
                            ))
                            .await;
                    }
                }
            }
        }
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_atm::{segment_to_cells, Cell};
    use pandora_segment::{AudioSegment, Segment, SequenceNumber, Timestamp};
    use pandora_sim::{channel, link, unbounded, LinkConfig, Simulation};

    fn audio_seg(seq: u32) -> Segment {
        Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(seq),
            Timestamp(0),
            vec![0u8; 32],
        ))
    }

    fn video_seg(bytes: usize) -> Segment {
        Segment::Test(pandora_segment::TestSegment::new(
            SequenceNumber(0),
            Timestamp(0),
            vec![0u8; bytes],
        ))
    }

    struct Rig {
        sim: Simulation,
        pool: Pool<SlabSegment>,
        slab: ByteSlab,
        audio_tx: Sender<NetMsg>,
        video_tx: Sender<NetMsg>,
        wire_rx: Receiver<Cell>,
        stats: NetOutStats,
    }

    fn rig(mode: TxMode, cap: usize, bps: u64) -> Rig {
        rig_cfg(NetOutConfig::new(mode, cap), bps)
    }

    fn rig_cfg(config: NetOutConfig, bps: u64) -> Rig {
        let sim = Simulation::new();
        let spawner = sim.spawner();
        let pool = Pool::new(256);
        let slab = ByteSlab::new(64, 32 * 1024);
        let (audio_tx, audio_rx) = channel::<NetMsg>();
        let (video_tx, video_rx) = channel::<NetMsg>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let (wire_tx, wire_rx) = link::<Cell>(&spawner, LinkConfig::new("atm", bps));
        let stats = spawn_net_out(
            &spawner,
            "t",
            config,
            audio_rx,
            video_rx,
            wire_tx,
            pool.clone(),
            rep_tx,
            SimDuration::from_millis(100),
        );
        Rig {
            sim,
            pool,
            slab,
            audio_tx,
            video_tx,
            wire_rx,
            stats,
        }
    }

    fn msg(
        pool: &Pool<SlabSegment>,
        slab: &ByteSlab,
        stream: u32,
        seg: Segment,
        opened_ms: u64,
    ) -> NetMsg {
        NetMsg {
            stream: StreamId(stream),
            vci: Vci(stream),
            desc: pool
                .try_alloc(SlabSegment::from_segment(&seg, slab).unwrap())
                .unwrap(),
            opened_at: SimTime::from_millis(opened_ms),
        }
    }

    #[test]
    fn audio_goes_out_as_cells() {
        let mut r = rig(TxMode::NonInterleaved, 16, 100_000_000);
        let pool = r.pool.clone();
        let slab = r.slab.clone();
        let tx = r.audio_tx.clone();
        r.sim.spawn("feed", async move {
            tx.send(msg(&pool, &slab, 1, audio_seg(0), 0))
                .await
                .unwrap();
        });
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        let rx = r.wire_rx;
        r.sim.spawn("wire", async move {
            while let Ok(c) = rx.recv().await {
                g.borrow_mut().push(c);
            }
        });
        r.sim.run_until_idle();
        let cells = got.borrow();
        // 68-byte segment = 2 cells.
        assert_eq!(cells.len(), 2);
        assert!(cells[1].last);
        assert_eq!(cells[0].vci, Vci(1));
        assert_eq!(r.stats.audio_segments(), 1);
        assert_eq!(r.pool.free_count(), 256);
    }

    #[test]
    fn round_trip_through_net_in() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let pool = Pool::new(64);
        let (cell_tx, cell_rx) = channel::<Cell>();
        let (sw_tx, sw_rx) = channel::<SegMsg>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let stats = spawn_net_in(
            &spawner,
            "t",
            cell_rx,
            sw_tx,
            pool.clone(),
            ByteSlab::new(8, 4096),
            rep_tx,
            SimDuration::from_millis(100),
        );
        sim.spawn("feed", async move {
            let bytes = wire::encode(&audio_seg(7));
            for c in segment_to_cells(Vci(42), &bytes, 0) {
                cell_tx.send(c).await.unwrap();
            }
        });
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let pool2 = pool.clone();
        sim.spawn("switch", async move {
            if let Ok(m) = sw_rx.recv().await {
                *g.borrow_mut() = Some((m.stream, pool2.with(m.desc, |s| s.to_segment())));
                pool2.release(m.desc);
            }
        });
        sim.run_until_idle();
        let (stream, seg) = got.borrow().clone().expect("segment");
        assert_eq!(stream, StreamId(42));
        assert_eq!(seg, audio_seg(7));
        assert_eq!(stats.segments(), 1);
    }

    #[test]
    fn non_interleaved_video_holds_up_audio() {
        // A large video segment is mid-flight; audio arriving just after
        // must wait for all its cells (the §4.2 jitter source).
        let mut r = rig(TxMode::NonInterleaved, 64, 10_000_000);
        let pool = r.pool.clone();
        let slab = r.slab.clone();
        let (atx, vtx) = (r.audio_tx.clone(), r.video_tx.clone());
        r.sim.spawn("feed", async move {
            // 24kB video at 10Mbit/s ≈ 19.6ms of cells.
            vtx.send(msg(&pool, &slab, 2, video_seg(24_000), 0))
                .await
                .unwrap();
            pandora_sim::delay(SimDuration::from_micros(100)).await;
            atx.send(msg(&pool, &slab, 1, audio_seg(0), 0))
                .await
                .unwrap();
        });
        let audio_done = Rc::new(std::cell::Cell::new(SimTime::ZERO));
        let ad = audio_done.clone();
        let rx = r.wire_rx;
        r.sim.spawn("wire", async move {
            while let Ok(c) = rx.recv().await {
                if c.vci == Vci(1) && c.last {
                    ad.set(pandora_sim::now());
                }
            }
        });
        r.sim.run_until_idle();
        let t = audio_done.get();
        assert!(
            t >= SimTime::from_millis(18),
            "audio should wait behind the video burst, done at {t}"
        );
        let wait = r.stats.audio_wait_ns().max();
        assert!(wait > 15e6, "recorded wait {wait}ns");
    }

    #[test]
    fn interleaved_audio_preempts_video() {
        let mut r = rig(TxMode::Interleaved, 64, 10_000_000);
        let pool = r.pool.clone();
        let slab = r.slab.clone();
        let (atx, vtx) = (r.audio_tx.clone(), r.video_tx.clone());
        r.sim.spawn("feed", async move {
            vtx.send(msg(&pool, &slab, 2, video_seg(24_000), 0))
                .await
                .unwrap();
            pandora_sim::delay(SimDuration::from_micros(100)).await;
            atx.send(msg(&pool, &slab, 1, audio_seg(0), 0))
                .await
                .unwrap();
        });
        let audio_done = Rc::new(std::cell::Cell::new(SimTime::ZERO));
        let ad = audio_done.clone();
        let rx = r.wire_rx;
        r.sim.spawn("wire", async move {
            while let Ok(c) = rx.recv().await {
                if c.vci == Vci(1) && c.last {
                    ad.set(pandora_sim::now());
                }
            }
        });
        r.sim.run_until_idle();
        let t = audio_done.get();
        assert!(
            t < SimTime::from_millis(3),
            "interleaved audio must cut in quickly, done at {t}"
        );
    }

    #[test]
    fn p3_drops_oldest_stream_first() {
        // Flood the scheduler with video from an old and a new stream on a
        // slow link; drops must hit the old stream.
        let mut r = rig(TxMode::NonInterleaved, 4, 1_000_000);
        let pool = r.pool.clone();
        let slab = r.slab.clone();
        let vtx = r.video_tx.clone();
        r.sim.spawn("feed", async move {
            for _ in 0..10 {
                vtx.send(msg(&pool, &slab, 10, video_seg(5_000), 0))
                    .await
                    .unwrap(); // Old.
                vtx.send(msg(&pool, &slab, 20, video_seg(5_000), 900))
                    .await
                    .unwrap(); // New.
            }
        });
        let delivered = Rc::new(RefCell::new(HashMap::<Vci, u64>::new()));
        let d = delivered.clone();
        let rx = r.wire_rx;
        r.sim.spawn("wire", async move {
            while let Ok(c) = rx.recv().await {
                if c.last {
                    *d.borrow_mut().entry(c.vci).or_insert(0) += 1;
                }
            }
        });
        r.sim.run_until_idle();
        let old_drops = r.stats.p3_drops(StreamId(10));
        let new_drops = r.stats.p3_drops(StreamId(20));
        assert!(old_drops > 0, "old stream untouched");
        assert!(old_drops > new_drops, "old {old_drops} vs new {new_drops}");
        // The user-visible effect of Principle 3: the new call keeps
        // flowing while the old stream is starved.
        let delivered = delivered.borrow();
        let old_sent = delivered.get(&Vci(10)).copied().unwrap_or(0);
        let new_sent = delivered.get(&Vci(20)).copied().unwrap_or(0);
        assert!(
            new_sent > old_sent,
            "new {new_sent} vs old {old_sent} delivered"
        );
        assert_eq!(
            r.pool.free_count(),
            256,
            "dropped segments must be released"
        );
    }

    #[test]
    fn audio_priority_disabled_waits_behind_video() {
        // Interleaved mode normally lets audio cut in between video cells
        // (see interleaved_audio_preempts_video); with Principle 2
        // disabled the audio segment waits for the whole video backlog.
        let mut r = rig_cfg(
            NetOutConfig {
                audio_priority: false,
                ..NetOutConfig::new(TxMode::Interleaved, 64)
            },
            10_000_000,
        );
        let pool = r.pool.clone();
        let slab = r.slab.clone();
        let (atx, vtx) = (r.audio_tx.clone(), r.video_tx.clone());
        r.sim.spawn("feed", async move {
            vtx.send(msg(&pool, &slab, 2, video_seg(24_000), 0))
                .await
                .unwrap();
            pandora_sim::delay(SimDuration::from_micros(100)).await;
            atx.send(msg(&pool, &slab, 1, audio_seg(0), 0))
                .await
                .unwrap();
        });
        let audio_done = Rc::new(std::cell::Cell::new(SimTime::ZERO));
        let ad = audio_done.clone();
        let rx = r.wire_rx;
        r.sim.spawn("wire", async move {
            while let Ok(c) = rx.recv().await {
                if c.vci == Vci(1) && c.last {
                    ad.set(pandora_sim::now());
                }
            }
        });
        r.sim.run_until_idle();
        let t = audio_done.get();
        assert!(
            t >= SimTime::from_millis(18),
            "audio must wait behind video with P2 disabled, done at {t}"
        );
    }

    #[test]
    fn p3_disabled_drops_newest_stream_instead() {
        let mut r = rig_cfg(
            NetOutConfig {
                p3_oldest_first: false,
                ..NetOutConfig::new(TxMode::NonInterleaved, 4)
            },
            1_000_000,
        );
        let pool = r.pool.clone();
        let slab = r.slab.clone();
        let vtx = r.video_tx.clone();
        r.sim.spawn("feed", async move {
            for _ in 0..10 {
                vtx.send(msg(&pool, &slab, 10, video_seg(5_000), 0))
                    .await
                    .unwrap(); // Old.
                vtx.send(msg(&pool, &slab, 20, video_seg(5_000), 900))
                    .await
                    .unwrap(); // New.
            }
        });
        let rx = r.wire_rx;
        r.sim
            .spawn("wire", async move { while rx.recv().await.is_ok() {} });
        r.sim.run_until_idle();
        let old_drops = r.stats.p3_drops(StreamId(10));
        let new_drops = r.stats.p3_drops(StreamId(20));
        assert!(new_drops > 0, "new stream untouched");
        assert!(
            new_drops > old_drops,
            "new {new_drops} vs old {old_drops} — victim policy inverted"
        );
    }

    #[test]
    fn cell_loss_discards_frame_and_reports() {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let pool = Pool::new(64);
        let (cell_tx, cell_rx) = channel::<Cell>();
        let (sw_tx, sw_rx) = channel::<SegMsg>();
        let (rep_tx, rep_rx) = unbounded::<Report>();
        let stats = spawn_net_in(
            &spawner,
            "t",
            cell_rx,
            sw_tx,
            pool.clone(),
            ByteSlab::new(8, 4096),
            rep_tx,
            SimDuration::from_millis(1),
        );
        sim.spawn("feed", async move {
            // An intact first segment establishes the cell counter.
            let bytes = wire::encode(&audio_seg(0));
            for c in segment_to_cells(Vci(1), &bytes, 0) {
                cell_tx.send(c).await.unwrap();
            }
            // The second segment loses its first cell — a detectable gap.
            let bytes = wire::encode(&audio_seg(1));
            let mut cells = segment_to_cells(Vci(1), &bytes, 2);
            cells.remove(0);
            for c in cells {
                cell_tx.send(c).await.unwrap();
            }
            // A clean follow-up segment.
            let bytes = wire::encode(&audio_seg(2));
            for c in segment_to_cells(Vci(1), &bytes, 4) {
                cell_tx.send(c).await.unwrap();
            }
        });
        let n = Rc::new(std::cell::Cell::new(0));
        let nn = n.clone();
        let pool2 = pool.clone();
        sim.spawn("switch", async move {
            while let Ok(m) = sw_rx.recv().await {
                nn.set(nn.get() + 1);
                pool2.release(m.desc);
            }
        });
        sim.run_until_idle();
        assert_eq!(n.get(), 2, "only the intact segments arrive");
        assert_eq!(stats.frames_discarded(), 1);
        assert!(rep_rx.try_recv().is_some(), "cell-loss report expected");
    }
}
