//! The capture board and the mixer (display) board for video (§3.6).
//!
//! Capture: a camera task refreshes the framestore at the full 25 Hz rate;
//! one task per video stream reads its rectangle at the stream's
//! fractional rate, timing reads to dodge the camera scan, compresses
//! line-by-line and emits placement-carrying segments. Display: segments
//! are decompressed (with the per-stream last-line cache), whole frames
//! are assembled before anything is shown, and the blit is scheduled
//! around the display scan — both tear-avoidance rules of §3.6.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use pandora_metrics::Histogram;
use pandora_segment::{SequenceNumber, StreamId, Timestamp, VideoSegment};
use pandora_sim::{Cpu, Receiver, Sender, SimDuration, Spawner};
use pandora_video::{
    capture_rect, interp::LineCache, AssembledFrame, CaptureConfig, FrameAssembler, FrameStore,
    ScanModel, TestPattern, FRAME_PERIOD_NANOS,
};

use crate::config::VideoCosts;

/// Lines per slice through the compression subsystem ("slices of a few
/// lines each", §3.6).
const LINES_PER_SLICE: u32 = 4;

/// Pushes one compressed segment through the modelled compression
/// pipeline as slices, sending the hold-back-buffered descriptions and
/// flushing with dummy lines. Returns `(slices, dummy_flush_lines)`;
/// `Err` means the per-line records did not parse (corrupt payload).
fn push_through_compression(
    seg: &VideoSegment,
    pipeline: &mut pandora_video::slice::CompressionPipeline,
    holdback: &mut pandora_video::slice::HoldbackBuffer<u32>,
) -> Result<(u64, u64), ()> {
    use pandora_video::slice::{slice_segment, SliceDesc, DUMMY_FLUSH_LINES};
    let width = seg.video.width as usize;
    let line_len = |d: &[u8]| {
        let mode = pandora_video::dpcm::LineMode::from_header(*d.first()?)?;
        Some(pandora_video::dpcm::compressed_line_bytes(width, mode))
    };
    let slices = slice_segment(&seg.data, seg.video.lines, LINES_PER_SLICE, line_len).ok_or(())?;
    // Head description first, then the data slices, then the tail marker.
    let mut emitted = 0usize;
    let mut pushed = 1usize;
    emitted += holdback
        .push(SliceDesc::Head(seg.video.segment_number))
        .len();
    let mut exited_bytes = 0usize;
    let n_slices = slices.len() as u64;
    for (lines, data) in slices {
        pushed += 1;
        emitted += holdback
            .push(SliceDesc::Slice {
                lines,
                bytes: data.len() as u32,
            })
            .len();
        if let Some(out) = pipeline.write(data) {
            exited_bytes += out.len();
        }
    }
    pushed += 1;
    emitted += holdback.push(SliceDesc::Tail).len();
    // Dummy flush lines push the final real slice out of the pipeline.
    let dummy = vec![0u8; DUMMY_FLUSH_LINES as usize];
    if let Some(out) = pipeline.write(dummy) {
        exited_bytes += out.len();
    }
    pushed += 1;
    emitted += holdback
        .push(SliceDesc::Slice {
            lines: DUMMY_FLUSH_LINES,
            bytes: 2,
        })
        .len();
    // Invariants of §3.6: after the dummy flush, the hold-back buffer
    // retains exactly one slice description — the one modelling the data
    // (the dummies) still resident in the pipeline — and the flush pushed
    // the segment's final real slice out.
    debug_assert_eq!(
        holdback.held().len(),
        1,
        "pushed {pushed}, emitted {emitted}"
    );
    debug_assert!(exited_bytes > 0, "flush never drained the pipeline");
    let _ = (pushed, emitted);
    Ok((n_slices, DUMMY_FLUSH_LINES as u64))
}

/// A shared framestore refreshed by the camera task.
#[derive(Clone)]
pub struct Camera {
    store: Rc<RefCell<FrameStore>>,
    frames: Rc<Cell<u64>>,
}

impl Camera {
    /// Spawns the camera: writes a fresh [`TestPattern`] frame every 40 ms.
    pub fn spawn(spawner: &Spawner, name: &str, width: u32, height: u32) -> Camera {
        let store = Rc::new(RefCell::new(FrameStore::new(width, height)));
        let frames = Rc::new(Cell::new(0u64));
        let cam = Camera {
            store: store.clone(),
            frames: frames.clone(),
        };
        let pattern = TestPattern::new(width, height);
        spawner.spawn(&format!("camera:{name}"), async move {
            let mut n: u64 = 0;
            loop {
                store.borrow_mut().write_frame(&pattern.frame(n));
                frames.set(n + 1);
                n += 1;
                pandora_sim::delay(SimDuration::from_nanos(FRAME_PERIOD_NANOS)).await;
            }
        });
        cam
    }

    /// The shared framestore.
    pub fn store(&self) -> Rc<RefCell<FrameStore>> {
        self.store.clone()
    }

    /// Camera frames written so far.
    pub fn frames(&self) -> u64 {
        self.frames.get()
    }
}

/// Handle to stop or throttle a capture stream.
#[derive(Clone)]
pub struct VideoCaptureHandle {
    stop: Rc<Cell<bool>>,
    segments: Rc<Cell<u64>>,
    frames: Rc<Cell<u64>>,
    slices: Rc<Cell<u64>>,
    flush_lines: Rc<Cell<u64>>,
    divisor: Rc<Cell<u32>>,
}

impl VideoCaptureHandle {
    /// Stops the capture task at its next frame boundary.
    pub fn stop(&self) {
        self.stop.set(true);
    }

    /// Sets the P8 adaptation divisor: on top of the configured capture
    /// rate, only every `divisor`-th candidate frame is taken. 1 is full
    /// quality; the health monitor raises it to shed load when the path
    /// is lossy (video degrades before audio ever would — Principles
    /// 2/3). Values below 1 are clamped to 1.
    pub fn set_divisor(&self, divisor: u32) {
        self.divisor.set(divisor.max(1));
    }

    /// The current P8 adaptation divisor.
    pub fn divisor(&self) -> u32 {
        self.divisor.get()
    }

    /// Segments emitted.
    pub fn segments(&self) -> u64 {
        self.segments.get()
    }

    /// Frames captured.
    pub fn frames(&self) -> u64 {
        self.frames.get()
    }

    /// Slices pushed through the compression pipeline (§3.6).
    pub fn slices(&self) -> u64 {
        self.slices.get()
    }

    /// Dummy flush lines sent to drain the pipeline after each segment.
    pub fn flush_lines(&self) -> u64 {
        self.flush_lines.get()
    }
}

/// Spawns one video capture stream from `camera` at the configured
/// fractional rate, emitting `(stream, segment)` pairs on `out`.
#[allow(clippy::too_many_arguments)] // mirrors the board's full wiring harness
pub fn spawn_video_capture(
    spawner: &Spawner,
    name: &str,
    stream: StreamId,
    camera: &Camera,
    config: CaptureConfig,
    costs: VideoCosts,
    cpu: Cpu,
    out: Sender<(StreamId, VideoSegment)>,
) -> VideoCaptureHandle {
    let handle = VideoCaptureHandle {
        stop: Rc::new(Cell::new(false)),
        segments: Rc::new(Cell::new(0)),
        frames: Rc::new(Cell::new(0)),
        slices: Rc::new(Cell::new(0)),
        flush_lines: Rc::new(Cell::new(0)),
        divisor: Rc::new(Cell::new(1)),
    };
    let h = handle.clone();
    let store = camera.store();
    let scan = ScanModel::new(store.borrow().height(), FRAME_PERIOD_NANOS);
    spawner.spawn(&format!("video-capture:{name}:{stream}"), async move {
        let mut frame_no: u64 = 0;
        let mut seq = SequenceNumber(0);
        let mut pipeline = pandora_video::slice::CompressionPipeline::new();
        let mut holdback = pandora_video::slice::HoldbackBuffer::<u32>::new();
        let start = pandora_sim::now();
        loop {
            if h.stop.get() {
                return;
            }
            let frame_time = start + SimDuration::from_nanos(frame_no * FRAME_PERIOD_NANOS);
            pandora_sim::delay_until(frame_time).await;
            if !config.rate.captures_frame(frame_no) {
                frame_no += 1;
                continue;
            }
            // P8 adaptation: the divisor thins the configured rate
            // further while the health monitor has the stream degraded.
            if !frame_no.is_multiple_of(u64::from(h.divisor.get())) {
                frame_no += 1;
                continue;
            }
            // Dodge the camera scan over our rectangle ("carefully timed so
            // that the data from the camera … does not update any part of a
            // block while it is being read").
            let read_time =
                SimDuration::from_nanos(config.rect.height as u64 * costs.capture_per_line_ns / 4);
            let wait = scan.safe_blit_delay(
                config.rect,
                pandora_sim::now().as_nanos(),
                read_time.as_nanos(),
            );
            if wait > 0 {
                pandora_sim::delay(SimDuration::from_nanos(wait)).await;
            }
            let cost = config.rect.height as u64 * costs.capture_per_line_ns;
            cpu.claim(SimDuration::from_nanos(cost)).await;
            let ts = Timestamp::from_nanos(frame_time.as_nanos());
            let segments = {
                let store = store.borrow();
                capture_rect(&store, &config, frame_no as u32, seq, ts)
            };
            for _ in 0..segments.len() {
                seq = seq.next();
            }
            h.frames.set(h.frames.get() + 1);
            // "Each of which is despatched as soon as the data is ready":
            // every segment travels through the compression subsystem as
            // slices of a few lines (§3.6) — the pipeline retains the last
            // slice until pushed through, the hold-back buffer keeps the
            // slice descriptions honest, and dummy lines flush the tail.
            for seg in segments {
                match push_through_compression(&seg, &mut pipeline, &mut holdback) {
                    Ok((slices, flushed)) => {
                        h.slices.set(h.slices.get() + slices);
                        h.flush_lines.set(h.flush_lines.get() + flushed);
                    }
                    Err(()) => continue, // Corrupt payload: segment dropped.
                }
                h.segments.set(h.segments.get() + 1);
                if out.send((stream, seg)).await.is_err() {
                    return;
                }
            }
            frame_no += 1;
        }
    });
    handle
}

/// Display-side instrumentation.
#[derive(Clone)]
pub struct DisplaySink {
    inner: Rc<RefCell<DisplayInner>>,
}

struct DisplayInner {
    frames_shown: u64,
    frames_dropped: u64,
    segments: u64,
    decode_errors: u64,
    /// Capture-timestamp → blit latency, ns.
    latency: Histogram,
    /// Blits deferred to dodge the scan.
    blits_deferred: u64,
    display: FrameStore,
    last_frame: Option<AssembledFrame>,
}

impl DisplaySink {
    /// Complete frames blitted to the display.
    pub fn frames_shown(&self) -> u64 {
        self.inner.borrow().frames_shown
    }

    /// Frames abandoned with missing segments.
    pub fn frames_dropped(&self) -> u64 {
        self.inner.borrow().frames_dropped
    }

    /// Video segments processed.
    pub fn segments(&self) -> u64 {
        self.inner.borrow().segments
    }

    /// Segments that failed to decompress.
    pub fn decode_errors(&self) -> u64 {
        self.inner.borrow().decode_errors
    }

    /// Capture → display latency distribution, ns.
    pub fn latency_ns(&self) -> Histogram {
        self.inner.borrow().latency.clone()
    }

    /// Blits that had to wait for the scan to move away.
    pub fn blits_deferred(&self) -> u64 {
        self.inner.borrow().blits_deferred
    }

    /// The most recently completed frame.
    pub fn last_frame(&self) -> Option<AssembledFrame> {
        self.inner.borrow().last_frame.clone()
    }

    /// Reads back a rectangle of the display framestore.
    pub fn read_display(&self, rect: pandora_video::Rect) -> Vec<u8> {
        self.inner.borrow().display.read_rect(rect)
    }

    /// Average displayed frame rate over `elapsed`.
    pub fn fps(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_nanos() == 0 {
            0.0
        } else {
            self.frames_shown() as f64 / elapsed.as_secs_f64()
        }
    }
}

/// Spawns the mixer-board display path: decompress, assemble whole frames,
/// blit around the scan.
pub fn spawn_video_display(
    spawner: &Spawner,
    name: &str,
    display_width: u32,
    display_height: u32,
    segments: Receiver<(StreamId, VideoSegment)>,
    costs: VideoCosts,
    cpu: Cpu,
) -> DisplaySink {
    let sink = DisplaySink {
        inner: Rc::new(RefCell::new(DisplayInner {
            frames_shown: 0,
            frames_dropped: 0,
            segments: 0,
            decode_errors: 0,
            latency: Histogram::new(),
            blits_deferred: 0,
            display: FrameStore::new(display_width, display_height),
            last_frame: None,
        })),
    };
    let s = sink.clone();
    let scan = ScanModel::new(display_height, FRAME_PERIOD_NANOS);
    spawner.spawn(&format!("video-display:{name}"), async move {
        let mut cache = LineCache::new();
        let mut assemblers: std::collections::HashMap<StreamId, FrameAssembler> =
            Default::default();
        while let Ok((stream, seg)) = segments.recv().await {
            s.inner.borrow_mut().segments += 1;
            let cost = seg.video.lines as u64 * costs.display_per_line_ns;
            cpu.claim(SimDuration::from_nanos(cost)).await;
            let Some(lines) = pandora_video::interp::decode_segment(&seg, stream, &mut cache)
            else {
                s.inner.borrow_mut().decode_errors += 1;
                continue;
            };
            let asm = assemblers.entry(stream).or_default();
            let before_drops = asm.dropped_incomplete();
            let Some(frame) = asm.push(&seg, lines) else {
                let d = asm.dropped_incomplete();
                if d != before_drops {
                    s.inner.borrow_mut().frames_dropped += d - before_drops;
                }
                continue;
            };
            // "Once we have all the data for a frame, it is copied into the
            // display frame buffer as soon as possible, care being taken to
            // avoid the scan of the display controller."
            let blit_time =
                SimDuration::from_nanos(frame.rect.height as u64 * costs.display_per_line_ns / 4);
            let wait = scan.safe_blit_delay(
                frame.rect,
                pandora_sim::now().as_nanos(),
                blit_time.as_nanos(),
            );
            if wait > 0 {
                s.inner.borrow_mut().blits_deferred += 1;
                pandora_sim::delay(SimDuration::from_nanos(wait)).await;
            }
            let mut inner = s.inner.borrow_mut();
            if frame.rect.fits(display_width, display_height) {
                inner.display.write_rect(frame.rect, &frame.pixels);
            }
            let now = pandora_sim::now();
            inner.latency.record(
                now.as_nanos()
                    .saturating_sub(seg.common.timestamp.as_nanos()) as f64,
            );
            inner.frames_shown += 1;
            inner.last_frame = Some(frame);
        }
    });
    sink
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_sim::{channel, SimTime, Simulation};
    use pandora_video::dpcm::LineMode;
    use pandora_video::{RateFraction, Rect};

    fn capture_config(rate: RateFraction) -> CaptureConfig {
        CaptureConfig {
            rect: Rect::new(8, 8, 64, 48),
            rate,
            lines_per_segment: 16,
            mode: LineMode::Dpcm,
        }
    }

    fn rig(rate: RateFraction) -> (Simulation, VideoCaptureHandle, DisplaySink) {
        let mut sim = Simulation::new();
        let spawner = sim.spawner();
        let camera = Camera::spawn(&spawner, "t", 128, 96);
        let capture_cpu = Cpu::new("capture", SimDuration::from_nanos(700));
        let mixer_cpu = Cpu::new("mixer", SimDuration::from_nanos(700));
        let (tx, rx) = channel::<(StreamId, VideoSegment)>();
        let handle = spawn_video_capture(
            &spawner,
            "t",
            StreamId(1),
            &camera,
            capture_config(rate),
            VideoCosts::default(),
            capture_cpu,
            tx,
        );
        let sink = spawn_video_display(
            &spawner,
            "t",
            256,
            192,
            rx,
            VideoCosts::default(),
            mixer_cpu,
        );
        // Let the camera run.
        sim.run_for(SimDuration::from_millis(1));
        (sim, handle, sink)
    }

    #[test]
    fn full_rate_shows_25fps() {
        let (mut sim, handle, sink) = rig(RateFraction::FULL);
        sim.run_until(SimTime::from_secs(2));
        handle.stop();
        let fps = sink.fps(SimDuration::from_secs(2));
        assert!((23.0..=25.5).contains(&fps), "fps {fps}");
        assert_eq!(sink.frames_dropped(), 0);
        assert_eq!(sink.decode_errors(), 0);
    }

    #[test]
    fn two_fifths_rate_shows_10fps() {
        let (mut sim, handle, sink) = rig(RateFraction::new(2, 5));
        sim.run_until(SimTime::from_secs(2));
        handle.stop();
        let fps = sink.fps(SimDuration::from_secs(2));
        assert!((9.0..=10.5).contains(&fps), "fps {fps}");
    }

    #[test]
    fn frames_assemble_from_multiple_segments() {
        let (mut sim, handle, sink) = rig(RateFraction::FULL);
        sim.run_until(SimTime::from_millis(500));
        handle.stop();
        // 48 lines / 16 per segment = 3 segments per frame.
        assert!(sink.segments() >= sink.frames_shown() * 3);
        let frame = sink.last_frame().expect("a frame");
        assert_eq!(frame.rect, Rect::new(8, 8, 64, 48));
        assert_eq!(frame.pixels.len(), 64 * 48);
    }

    #[test]
    fn display_latency_is_bounded() {
        let (mut sim, handle, sink) = rig(RateFraction::FULL);
        sim.run_until(SimTime::from_secs(1));
        handle.stop();
        let mut lat = sink.latency_ns();
        assert!(lat.count() > 10);
        // Capture → display within two frame periods on a local path.
        assert!(
            lat.percentile(99.0) < 80e6,
            "p99 {}ms",
            lat.percentile(99.0) / 1e6
        );
    }

    #[test]
    fn adaptation_divisor_thins_and_restores_the_rate() {
        let (mut sim, handle, sink) = rig(RateFraction::FULL);
        assert_eq!(handle.divisor(), 1);
        sim.run_until(SimTime::from_secs(1));
        let full = handle.frames();
        // Degrade: every 4th candidate frame only.
        handle.set_divisor(4);
        sim.run_until(SimTime::from_secs(2));
        let thinned = handle.frames() - full;
        assert!(
            thinned * 3 < full,
            "divisor 4 should thin well below full rate: {thinned} vs {full}"
        );
        // Recover: divisor 1 restores full rate (0 clamps to 1).
        handle.set_divisor(0);
        assert_eq!(handle.divisor(), 1);
        sim.run_until(SimTime::from_secs(3));
        let restored = handle.frames() - full - thinned;
        assert!(
            restored + 2 >= full,
            "full rate should come back: {restored} vs {full}"
        );
        handle.stop();
        assert_eq!(sink.decode_errors(), 0);
    }

    #[test]
    fn stop_halts_stream() {
        let (mut sim, handle, sink) = rig(RateFraction::FULL);
        sim.run_until(SimTime::from_millis(500));
        handle.stop();
        sim.run_until(SimTime::from_millis(600));
        let shown = sink.frames_shown();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            sink.frames_shown(),
            shown,
            "frames kept arriving after stop"
        );
    }

    #[test]
    fn displayed_pixels_resemble_camera() {
        let (mut sim, handle, sink) = rig(RateFraction::FULL);
        sim.run_until(SimTime::from_secs(1));
        handle.stop();
        let frame = sink.last_frame().expect("frame");
        // DPCM is lossy and the pattern moves, but the displayed rectangle
        // must correlate with a recent camera frame: compare means.
        let mean_display: f64 =
            frame.pixels.iter().map(|&p| p as f64).sum::<f64>() / frame.pixels.len() as f64;
        assert!(
            (20.0..=235.0).contains(&mean_display),
            "mean {mean_display}"
        );
        // And the display store holds the blitted data.
        let shown = sink.read_display(frame.rect);
        assert_eq!(shown, frame.pixels);
    }
}
