//! Message and stream-table types shared by the box's processes.

use pandora_atm::Vci;
use pandora_buffers::Descriptor;
use pandora_segment::{SegmentType, StreamId};
use pandora_sim::SimTime;

/// The class of traffic on a stream (drives Principle 2).
// check:wire-enum(encode): every class must be named in the routing and
// scheduling matches — a catch-all arm would silently misroute a newly
// added class instead of forcing a priority decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// An audio stream.
    Audio,
    /// A video stream.
    Video,
    /// Session-control signalling. Control segments ride the same paths
    /// as media but are never starved: toward the network they share the
    /// audio priority queue, and inside the box they land on the session
    /// output via the switch's PRI-ALT loop (Principle 4).
    Control,
    /// Test traffic.
    Test,
}

impl From<SegmentType> for StreamKind {
    fn from(t: SegmentType) -> StreamKind {
        match t {
            SegmentType::Audio => StreamKind::Audio,
            SegmentType::Video => StreamKind::Video,
            SegmentType::Test => StreamKind::Test,
        }
    }
}

/// An output device handler on the server board (figure 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputId {
    /// The ATM network output, tagged with the outgoing VCI for the
    /// stream ("what outgoing VCI to use", §3.4).
    Network(Vci),
    /// The audio board (local playback).
    Audio,
    /// The mixer board (local video display).
    Mixer,
    /// The test output handler.
    Test,
    /// The repository recorder attachment.
    Repository,
    /// The session agent attachment (inbound control signalling).
    Session,
}

/// A descriptor travelling from an input handler through the switch.
#[derive(Debug, Clone, Copy)]
pub struct SegMsg {
    /// The in-box stream number.
    pub stream: StreamId,
    /// Pool descriptor of the segment buffer.
    pub desc: Descriptor,
}

/// A per-stream switch table entry (§3.4: "private tables that describe
/// the operations to be performed on the segments of each stream").
#[derive(Debug, Clone)]
pub struct SwitchEntry {
    /// Where copies of this stream go.
    pub dests: Vec<OutputId>,
    /// Traffic class.
    pub kind: StreamKind,
    /// When the stream was opened (drives Principle 3's age ordering).
    pub opened_at: SimTime,
}

/// Commands understood by the switch process ("the tables are updated
/// without disturbing the flows of data when commands are received",
/// Principle 6).
#[derive(Debug, Clone)]
pub enum SwitchCommand {
    /// Install or replace a stream's routing entry.
    SetRoute {
        /// The stream to configure.
        stream: StreamId,
        /// The new entry.
        entry: SwitchEntry,
    },
    /// Add one destination to an existing stream (splitting, Principle 6).
    AddDest {
        /// The stream to split.
        stream: StreamId,
        /// The extra destination.
        dest: OutputId,
    },
    /// Remove one destination from a stream.
    RemoveDest {
        /// The stream.
        stream: StreamId,
        /// The destination to drop.
        dest: OutputId,
    },
    /// Drop the stream's entry entirely; the table's other streams keep
    /// flowing byte-identically (Principle 6 at the switch).
    DropRoute {
        /// The stream to stop routing.
        stream: StreamId,
    },
    /// Emit a status report for a stream.
    Query {
        /// The stream to report on.
        stream: StreamId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_kind_from_segment_type() {
        assert_eq!(StreamKind::from(SegmentType::Audio), StreamKind::Audio);
        assert_eq!(StreamKind::from(SegmentType::Video), StreamKind::Video);
        assert_eq!(StreamKind::from(SegmentType::Test), StreamKind::Test);
    }

    #[test]
    fn output_id_equality() {
        assert_eq!(OutputId::Network(Vci(3)), OutputId::Network(Vci(3)));
        assert_ne!(OutputId::Network(Vci(3)), OutputId::Network(Vci(4)));
        assert_ne!(OutputId::Audio, OutputId::Mixer);
    }
}
