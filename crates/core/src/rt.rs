//! A live, wall-clock runtime for the Pandora audio pipeline.
//!
//! Everything else in this workspace runs in deterministic virtual time;
//! this module runs the same data path — µ-law blocks, segments, jitter,
//! per-stream clawback buffers, software mixing, muting — on real OS
//! threads against the real clock, which is what a downstream user
//! embedding the library in an actual audio application would do.
//!
//! The thread structure mirrors the paper's process structure: one
//! producer per stream (the codec/block handler), one network thread per
//! stream (the jittery path), and a mixer thread ticking every 2 ms (the
//! destination audio transputer). Channels are `crossbeam` bounded
//! channels, whose blocking send is the rendezvous back-pressure of the
//! transputer links.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pandora_audio::gen::{Signal, Tone};
use pandora_audio::{mix_blocks, segment_blocks, Block, SegmentAssembler};
use pandora_buffers::{ClawbackBank, ClawbackConfig, ClawbackPool};
use pandora_segment::{AudioSegment, StreamId, Timestamp};

/// Configuration of a live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Number of concurrent audio streams.
    pub streams: usize,
    /// Blocks per segment (2 is the paper default).
    pub blocks_per_segment: usize,
    /// Maximum random network delay applied per segment.
    pub jitter_max: Duration,
    /// Wall-clock duration of the call.
    pub duration: Duration,
    /// Clawback parameters.
    pub clawback: ClawbackConfig,
    /// RNG seed for the jitter threads.
    pub seed: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            streams: 3,
            blocks_per_segment: 2,
            jitter_max: Duration::from_millis(8),
            duration: Duration::from_millis(500),
            clawback: ClawbackConfig::default(),
            seed: 7,
        }
    }
}

/// What a live run measured.
#[derive(Debug, Clone, Default)]
pub struct LiveReport {
    /// Segments produced across all streams.
    pub segments_sent: u64,
    /// Segments that reached the mixer side.
    pub segments_received: u64,
    /// 2 ms mix ticks executed.
    pub mix_ticks: u64,
    /// Ticks where at least one stream contributed audio.
    pub active_ticks: u64,
    /// Blocks served by the clawback buffers.
    pub blocks_served: u64,
    /// Silence insertions (buffer empty at tick).
    pub silence_ticks: u64,
    /// Blocks clawed back.
    pub clawed_back: u64,
    /// Peak simultaneous active streams at the mixer.
    pub peak_streams: usize,
}

/// Runs a live multi-stream audio call on OS threads; blocks the calling
/// thread for roughly `config.duration` and returns the measurements.
///
/// # Panics
///
/// Panics if `config.streams` is zero.
pub fn run_live_call(config: LiveConfig) -> LiveReport {
    assert!(config.streams > 0, "at least one stream required");
    let report = Arc::new(Mutex::new(LiveReport::default()));
    let (mix_tx, mix_rx) = channel::bounded::<(StreamId, AudioSegment)>(256);
    let deadline = Instant::now() + config.duration;
    let mut handles = Vec::new();

    // Producers: one block every 2 ms, grouped into segments, through a
    // jitter thread into the mixer channel.
    for k in 0..config.streams {
        let (net_tx, net_rx) = channel::bounded::<(StreamId, AudioSegment)>(64);
        // Producer thread: the block handler.
        {
            let report = report.clone();
            let bps = config.blocks_per_segment;
            handles.push(thread::spawn(move || {
                let start = Instant::now();
                let mut signal = Tone::new(220.0 + 110.0 * k as f64, 6_000.0);
                let mut asm = SegmentAssembler::new(bps);
                let mut n: u32 = 0;
                while Instant::now() < deadline {
                    n += 1;
                    let due = start + Duration::from_millis(2) * n;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        thread::sleep(wait);
                    }
                    let ts = Timestamp::from_nanos(start.elapsed().as_nanos() as u64);
                    if let Some(seg) = asm.push(signal.next_block(), ts) {
                        report.lock().segments_sent += 1;
                        if net_tx.send((StreamId(k as u32 + 1), seg)).is_err() {
                            return;
                        }
                    }
                }
            }));
        }
        // Network thread: random per-segment delay (FIFO preserved by
        // thread seriality, like a queueing path).
        {
            let mix_tx = mix_tx.clone();
            let jitter_max = config.jitter_max;
            let seed = config.seed.wrapping_add(k as u64);
            handles.push(thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                while let Ok(item) = net_rx.recv() {
                    let jitter = rng.gen_range(Duration::ZERO..=jitter_max);
                    thread::sleep(jitter);
                    if mix_tx.send(item).is_err() {
                        return;
                    }
                }
            }));
        }
    }
    drop(mix_tx);

    // The mixer thread: the destination audio board.
    let mixer_report = report.clone();
    let clawback = config.clawback;
    let mixer = thread::spawn(move || {
        let mut bank: ClawbackBank<Block> = ClawbackBank::new(clawback, ClawbackPool::standard());
        let start = Instant::now();
        let mut tick: u32 = 0;
        // Run a little past the deadline to drain stragglers.
        let mixer_deadline = deadline + Duration::from_millis(50);
        while Instant::now() < mixer_deadline {
            tick += 1;
            let due = start + Duration::from_millis(2) * tick;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
            // Drain arrivals without blocking.
            while let Ok((sid, seg)) = mix_rx.try_recv() {
                mixer_report.lock().segments_received += 1;
                for block in segment_blocks(&seg) {
                    bank.arrival(sid, block);
                }
            }
            let inputs = bank.mix_tick();
            let blocks: Vec<Block> = inputs.iter().map(|(_, b)| *b).collect();
            let _mixed = mix_blocks(blocks.iter());
            let stats = bank.total_stats();
            let mut r = mixer_report.lock();
            r.mix_ticks += 1;
            if !inputs.is_empty() {
                r.active_ticks += 1;
            }
            r.peak_streams = r.peak_streams.max(inputs.len());
            r.blocks_served = stats.served;
            r.silence_ticks = stats.empty_ticks;
            r.clawed_back = stats.clawed_back;
        }
    });

    for h in handles {
        let _ = h.join();
    }
    let _ = mixer.join();
    Arc::try_unwrap(report)
        .map(|m| m.into_inner())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_call_flows_end_to_end() {
        let report = run_live_call(LiveConfig {
            streams: 2,
            duration: Duration::from_millis(400),
            jitter_max: Duration::from_millis(6),
            ..LiveConfig::default()
        });
        // 400ms at 4ms per 2-block segment ≈ 100 segments per stream;
        // wall-clock scheduling is sloppy, so bound loosely.
        assert!(report.segments_sent >= 120, "sent {}", report.segments_sent);
        assert!(
            report.segments_received >= report.segments_sent - 20,
            "received {} of {}",
            report.segments_received,
            report.segments_sent
        );
        assert!(report.mix_ticks >= 150, "ticks {}", report.mix_ticks);
        assert_eq!(report.peak_streams, 2);
        assert!(
            report.blocks_served > 200,
            "served {}",
            report.blocks_served
        );
    }

    #[test]
    fn jitter_free_live_call_has_little_silence() {
        let report = run_live_call(LiveConfig {
            streams: 1,
            duration: Duration::from_millis(300),
            jitter_max: Duration::from_micros(100),
            ..LiveConfig::default()
        });
        // With negligible jitter, underruns after warm-up are rare.
        assert!(
            report.silence_ticks < report.mix_ticks / 4,
            "silence {} of {}",
            report.silence_ticks,
            report.mix_ticks
        );
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn zero_streams_rejected() {
        let _ = run_live_call(LiveConfig {
            streams: 0,
            ..LiveConfig::default()
        });
    }
}
