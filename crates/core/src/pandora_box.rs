//! The assembled Pandora's Box (figures 1.2/1.3/3.3/3.5).
//!
//! Wires the five boards together: capture and mixer boards joined to the
//! server by 100 Mbit/s FIFOs, the audio board by a 20 Mbit/s link, the
//! network board on the box's ATM attachment; the server switch fans
//! streams out through ready-mode decoupling buffers, with the audio/video
//! split toward the network of figure 3.7. "The host states what it wants
//! done with the streams, and they then run continuously until stopped."

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use pandora_atm::Vci;
use pandora_audio::{gen::Signal, Muting};
use pandora_buffers::{ByteSlab, Descriptor, Pool, ReadyGate, Report, ReportClass};
use pandora_segment::{AudioSegment, Segment, SlabSegment, StreamId, VideoSegment};
use pandora_sim::{link, Cpu, LinkConfig, LinkSender, Receiver, Sender, SimTime, Spawner};
use pandora_video::CaptureConfig;

use crate::audio_board::{
    spawn_audio_capture, spawn_audio_playback, CaptureConfig as MicConfig, CaptureStats,
    PlaybackConfig, SpeakerSink,
};
use crate::config::BoxConfig;
use crate::hostlog::ReportLog;
use crate::msg::{OutputId, SegMsg, StreamKind, SwitchCommand, SwitchEntry};
use crate::network_board::{spawn_net_in, spawn_net_out, NetInStats, NetOutConfig, NetOutStats};
use crate::server_board::{spawn_switch, NetMsg, SwitchOutputs, SwitchStats};
use crate::video_boards::{
    spawn_video_capture, spawn_video_display, Camera, DisplaySink, VideoCaptureHandle,
};

/// Copies an input device's segment into the slab (the hop's single input
/// copy, §3.4) and pools a descriptor over it. `None` means the slab or
/// the pool is exhausted — the caller reports and discards.
fn alloc_slab_segment(
    pool: &Pool<SlabSegment>,
    slab: &ByteSlab,
    segment: &Segment,
) -> Option<Descriptor> {
    let slabseg = SlabSegment::from_segment(segment, slab).ok()?;
    pool.try_alloc(slabseg).ok()
}

/// One Pandora's Box: boards, switch, buffers, instrumentation.
pub struct PandoraBox {
    /// Configuration in force.
    pub config: BoxConfig,
    /// The host-side report log.
    pub log: ReportLog,
    /// Switch statistics.
    pub switch_stats: SwitchStats,
    /// Network transmit statistics.
    pub net_out_stats: NetOutStats,
    /// Network receive statistics.
    pub net_in_stats: NetInStats,
    /// Speaker-side audio instrumentation.
    pub speaker: SpeakerSink,
    /// Display-side video instrumentation.
    pub display: DisplaySink,
    /// The camera shared by capture streams.
    pub camera: Camera,
    /// The P8 stream-health monitor, when [`BoxConfig::health`] is set.
    pub health: Option<crate::health::HealthBoard>,
    /// The server board's segment pool: descriptors over slab-backed
    /// payloads. Only indices move between boards (§3.4).
    pub pool: Pool<SlabSegment>,
    /// The payload byte arena every pooled segment points into.
    pub slab: ByteSlab,
    /// The audio transputer.
    pub audio_cpu: Cpu,
    /// The server transputer.
    pub server_cpu: Cpu,
    /// The capture transputer.
    pub capture_cpu: Cpu,
    /// The mixer transputer.
    pub mixer_cpu: Cpu,

    spawner: Spawner,
    buffer_handles: Rc<RefCell<Vec<pandora_buffers::DecouplingHandle>>>,
    switch_cmd: Sender<SwitchCommand>,
    to_switch: Sender<SegMsg>,
    muting: Option<Rc<RefCell<Muting>>>,
    next_stream: Cell<u32>,
    opened: RefCell<HashMap<StreamId, SimTime>>,
    mic_stats: RefCell<Vec<CaptureStats>>,
    repository_rx: RefCell<Option<Receiver<(StreamId, Segment)>>>,
    session_rx: RefCell<Option<Receiver<(StreamId, Segment)>>>,
}

impl PandoraBox {
    /// Builds a box attached to the network via `net_tx`/`net_rx`.
    pub fn new(
        spawner: &Spawner,
        config: BoxConfig,
        net_tx: LinkSender<pandora_atm::Cell>,
        net_rx: Receiver<pandora_atm::Cell>,
    ) -> PandoraBox {
        let name = config.name;
        let log = ReportLog::spawn(spawner, name);
        let reports = log.sender();
        let pool: Pool<SlabSegment> = Pool::new(config.pool_buffers);
        let slab = ByteSlab::new(config.slab_buffers, config.slab_bytes);

        let audio_cpu = Cpu::new(&format!("{name}.audio"), config.switch_cost);
        let server_cpu = Cpu::new(&format!("{name}.server"), config.switch_cost);
        let capture_cpu = Cpu::new(&format!("{name}.capture"), config.switch_cost);
        let mixer_cpu = Cpu::new(&format!("{name}.mixer"), config.switch_cost);

        // --- Output decoupling buffers (downstream of the switch, §3.7.1).
        let buffer_handles: Rc<RefCell<Vec<pandora_buffers::DecouplingHandle>>> =
            Rc::new(RefCell::new(Vec::new()));
        let bh = buffer_handles.clone();
        let ready_mode = config.ready_mode;
        let mk_net_gate = move |label: &str, cap: usize| {
            let (in_tx, in_rx) = pandora_sim::channel::<NetMsg>();
            let (out_tx, out_rx) = pandora_sim::channel::<NetMsg>();
            if ready_mode {
                let (h, ready) = pandora_buffers::spawn_decoupling_ready(
                    spawner,
                    &format!("{name}:{label}"),
                    cap,
                    in_rx,
                    out_tx,
                    reports.clone(),
                );
                bh.borrow_mut().push(h);
                (ReadyGate::new(in_tx, ready), out_rx)
            } else {
                let h = pandora_buffers::spawn_decoupling(
                    spawner,
                    &format!("{name}:{label}"),
                    cap,
                    in_rx,
                    out_tx,
                    reports.clone(),
                );
                bh.borrow_mut().push(h);
                (ReadyGate::blocking(in_tx), out_rx)
            }
        };
        let (net_audio_gate, net_audio_rx) = mk_net_gate("net-audio", config.audio_net_buffer);
        let (net_video_gate, net_video_rx) = mk_net_gate("net-video", config.decoupling_capacity);

        let reports = log.sender();
        let bh = buffer_handles.clone();
        let mk_seg_gate = move |label: &str, cap: usize| {
            let (in_tx, in_rx) = pandora_sim::channel::<SegMsg>();
            let (out_tx, out_rx) = pandora_sim::channel::<SegMsg>();
            if ready_mode {
                let (h, ready) = pandora_buffers::spawn_decoupling_ready(
                    spawner,
                    &format!("{name}:{label}"),
                    cap,
                    in_rx,
                    out_tx,
                    reports.clone(),
                );
                bh.borrow_mut().push(h);
                (ReadyGate::new(in_tx, ready), out_rx)
            } else {
                let h = pandora_buffers::spawn_decoupling(
                    spawner,
                    &format!("{name}:{label}"),
                    cap,
                    in_rx,
                    out_tx,
                    reports.clone(),
                );
                bh.borrow_mut().push(h);
                (ReadyGate::blocking(in_tx), out_rx)
            }
        };
        let (audio_gate, audio_out_rx) = mk_seg_gate("audio-out", config.decoupling_capacity);
        let (mixer_gate, mixer_out_rx) = mk_seg_gate("mixer-out", config.decoupling_capacity);
        let (repo_gate, repo_out_rx) = mk_seg_gate("repo-out", config.decoupling_capacity);
        let (session_gate, session_out_rx) = mk_seg_gate("session-out", config.decoupling_capacity);
        let reports = log.sender();

        // --- The switch.
        let (to_switch, switch_in_rx) = pandora_sim::channel::<SegMsg>();
        let (switch_cmd, switch_cmd_rx) = pandora_sim::unbounded::<SwitchCommand>();
        let outputs = SwitchOutputs {
            net_audio: Some(net_audio_gate),
            net_video: Some(net_video_gate),
            audio: Some(audio_gate),
            mixer: Some(mixer_gate),
            test: None,
            repository: Some(repo_gate),
            session: Some(session_gate),
        };
        let switch_stats = spawn_switch(
            spawner,
            name,
            switch_in_rx,
            switch_cmd_rx,
            config.command_priority,
            outputs,
            pool.clone(),
            server_cpu.clone(),
            pandora_sim::SimDuration::from_nanos(config.video_costs.switch_per_segment_ns),
            reports.clone(),
            config.report_min_period,
        );

        // --- Network board.
        let net_out_stats = spawn_net_out(
            spawner,
            name,
            NetOutConfig {
                mode: config.tx_mode,
                video_backlog_cap: config.video_backlog_cap,
                audio_priority: config.audio_priority,
                p3_oldest_first: config.p3_oldest_first,
            },
            net_audio_rx,
            net_video_rx,
            net_tx,
            pool.clone(),
            reports.clone(),
            config.report_min_period,
        );
        let net_in_stats = spawn_net_in(
            spawner,
            name,
            net_rx,
            to_switch.clone(),
            pool.clone(),
            slab.clone(),
            reports.clone(),
            config.report_min_period,
        );

        // --- Audio board: server → (20 Mbit/s link) → clawback/mixer.
        let muting = if config.muting_enabled {
            Some(Rc::new(RefCell::new(Muting::new(config.muting))))
        } else {
            None
        };
        let audio_link_cfg = LinkConfig::new(
            Box::leak(format!("{name}.audio-link").into_boxed_str()),
            config.audio_link_bps,
        );
        let (audio_link_tx, audio_link_rx) =
            link::<(StreamId, AudioSegment)>(spawner, audio_link_cfg);
        // Pump: SegMsg → concrete audio segments over the link.
        {
            let pool = pool.clone();
            let reports = reports.clone();
            spawner.spawn(&format!("{name}:audio-out-handler"), async move {
                while let Ok(m) = audio_out_rx.recv().await {
                    // Device output: the second (and last) payload copy of
                    // the hop leaves the slab here.
                    let seg = pool.with(m.desc, |s| s.to_segment());
                    pool.release(m.desc);
                    match seg {
                        Segment::Audio(a) => {
                            let bytes = a.wire_bytes();
                            if audio_link_tx
                                .send_sized((m.stream, a), bytes)
                                .await
                                .is_err()
                            {
                                return;
                            }
                        }
                        _ => {
                            let _ = reports
                                .send(Report::new(
                                    pandora_sim::now(),
                                    "audio-out-handler",
                                    ReportClass::Error,
                                    format!("non-audio segment on audio output ({})", m.stream),
                                ))
                                .await;
                        }
                    }
                }
            });
        }
        let playback_config = PlaybackConfig {
            clawback: config.clawback,
            pool_blocks: config.clawback_pool_blocks,
            charge_clawback: true,
            charge_muting: config.muting_enabled,
            charge_interface: true,
            costs: config.audio_costs,
            drift: config.clock_drift,
            conceal_cap_blocks: 6,
            record_output: false,
            codec_output_fifo_ns: 4_000_000,
            output_priority: config.output_priority,
        };
        let speaker = spawn_audio_playback(
            spawner,
            name,
            playback_config,
            muting.clone(),
            audio_cpu.clone(),
            audio_link_rx,
            reports.clone(),
            config.report_min_period,
        );

        // --- Mixer board: server → (100 Mbit/s fifo) → display.
        let video_fifo_cfg = LinkConfig::new(
            Box::leak(format!("{name}.video-fifo").into_boxed_str()),
            config.video_fifo_bps,
        );
        let (video_fifo_tx, video_fifo_rx) =
            link::<(StreamId, VideoSegment)>(spawner, video_fifo_cfg);
        {
            let pool = pool.clone();
            let reports = reports.clone();
            spawner.spawn(&format!("{name}:mixer-out-handler"), async move {
                while let Ok(m) = mixer_out_rx.recv().await {
                    let seg = pool.with(m.desc, |s| s.to_segment());
                    pool.release(m.desc);
                    match seg {
                        Segment::Video(v) => {
                            let bytes = v.wire_bytes();
                            if video_fifo_tx
                                .send_sized((m.stream, v), bytes)
                                .await
                                .is_err()
                            {
                                return;
                            }
                        }
                        _ => {
                            let _ = reports
                                .send(Report::new(
                                    pandora_sim::now(),
                                    "mixer-out-handler",
                                    ReportClass::Error,
                                    format!("non-video segment on mixer output ({})", m.stream),
                                ))
                                .await;
                        }
                    }
                }
            });
        }
        let display = spawn_video_display(
            spawner,
            name,
            pandora_video::DEFAULT_WIDTH,
            pandora_video::DEFAULT_HEIGHT,
            video_fifo_rx,
            config.video_costs,
            mixer_cpu.clone(),
        );

        // --- Repository tap: SegMsg → (stream, segment) for attachments.
        let (repo_tx, repo_rx) = pandora_sim::channel::<(StreamId, Segment)>();
        {
            let pool = pool.clone();
            spawner.spawn(&format!("{name}:repo-out-handler"), async move {
                while let Ok(m) = repo_out_rx.recv().await {
                    let seg = pool.with(m.desc, |s| s.to_segment());
                    pool.release(m.desc);
                    if repo_tx.send((m.stream, seg)).await.is_err() {
                        return;
                    }
                }
            });
        }

        // --- Session tap: control segments routed to [`OutputId::Session`]
        // surface here for the box's session agent.
        let (session_tx, session_rx) = pandora_sim::channel::<(StreamId, Segment)>();
        {
            let pool = pool.clone();
            spawner.spawn(&format!("{name}:session-out-handler"), async move {
                while let Ok(m) = session_out_rx.recv().await {
                    let seg = pool.with(m.desc, |s| s.to_segment());
                    pool.release(m.desc);
                    if session_tx.send((m.stream, seg)).await.is_err() {
                        return;
                    }
                }
            });
        }

        // --- Camera.
        let camera = Camera::spawn(
            spawner,
            name,
            pandora_video::DEFAULT_WIDTH,
            pandora_video::DEFAULT_HEIGHT,
        );

        // --- P8 local adaptation (opt-in): the health monitor samples
        // the box's own counters and mutes audio / thins video locally.
        let health = config.health.map(|hc| {
            crate::health::HealthBoard::spawn(
                spawner,
                name,
                hc,
                speaker.clone(),
                net_out_stats.clone(),
            )
        });

        PandoraBox {
            config,
            log,
            switch_stats,
            net_out_stats,
            net_in_stats,
            speaker,
            display,
            camera,
            health,
            pool,
            slab,
            audio_cpu,
            server_cpu,
            capture_cpu,
            mixer_cpu,
            spawner: spawner.clone(),
            buffer_handles,
            switch_cmd,
            to_switch,
            muting,
            next_stream: Cell::new(1),
            opened: RefCell::new(HashMap::new()),
            mic_stats: RefCell::new(Vec::new()),
            repository_rx: RefCell::new(Some(repo_rx)),
            session_rx: RefCell::new(Some(session_rx)),
        }
    }

    /// Allocates a fresh stream number ("to set data flowing, it is
    /// necessary to allocate a new stream number", §1.1).
    pub fn alloc_stream(&self) -> StreamId {
        let id = self.next_stream.get();
        self.next_stream.set(id + 1);
        let stream = StreamId(id);
        self.opened.borrow_mut().insert(
            stream,
            pandora_sim::try_now().unwrap_or_else(|| self.spawner.now()),
        );
        stream
    }

    /// Installs the switch route for a stream.
    pub fn set_route(&self, stream: StreamId, kind: StreamKind, dests: Vec<OutputId>) {
        let opened_at = self
            .opened
            .borrow()
            .get(&stream)
            .copied()
            .unwrap_or_else(|| pandora_sim::try_now().unwrap_or_else(|| self.spawner.now()));
        let entry = SwitchEntry {
            dests,
            kind,
            opened_at,
        };
        self.switch_cmd
            .try_send(SwitchCommand::SetRoute { stream, entry })
            .expect("switch command channel unbounded");
    }

    /// Adds a destination to a live stream (splitting, Principle 6).
    pub fn add_dest(&self, stream: StreamId, dest: OutputId) {
        self.switch_cmd
            .try_send(SwitchCommand::AddDest { stream, dest })
            .expect("switch command channel unbounded");
    }

    /// Removes a destination from a live stream.
    pub fn remove_dest(&self, stream: StreamId, dest: OutputId) {
        self.switch_cmd
            .try_send(SwitchCommand::RemoveDest { stream, dest })
            .expect("switch command channel unbounded");
    }

    /// Tears down a stream's routing.
    pub fn clear_route(&self, stream: StreamId) {
        self.switch_cmd
            .try_send(SwitchCommand::DropRoute { stream })
            .expect("switch command channel unbounded");
    }

    /// Asks the switch to report on a stream.
    pub fn query_stream(&self, stream: StreamId) {
        self.switch_cmd
            .try_send(SwitchCommand::Query { stream })
            .expect("switch command channel unbounded");
    }

    /// Starts an audio source (microphone or line-in) as a new stream.
    ///
    /// The segments travel over the audio board's 20 Mbit/s link to the
    /// server input handler, which launches them into the switch. Returns
    /// the stream number; call [`PandoraBox::set_route`] to plumb it.
    pub fn start_audio_source(&self, signal: Box<dyn Signal>) -> StreamId {
        let stream = self.alloc_stream();
        let name = self.config.name;
        let link_cfg = LinkConfig::new(
            Box::leak(format!("{name}.mic-link:{stream}").into_boxed_str()),
            self.config.audio_link_bps,
        );
        let (mic_link_tx, mic_link_rx) = link::<AudioSegment>(&self.spawner, link_cfg);
        let stats = spawn_audio_capture(
            &self.spawner,
            &format!("{name}:{stream}"),
            MicConfig {
                signal,
                blocks_per_segment: self.config.blocks_per_segment,
                drift: self.config.clock_drift,
                outgoing_cost: pandora_sim::SimDuration::from_nanos(
                    self.config.audio_costs.outgoing_per_block_ns,
                ),
                fifo_depth: 16,
            },
            self.muting.clone(),
            self.audio_cpu.clone(),
            {
                // Bridge: AudioSegment → link → pool → switch.
                let (seg_tx, seg_rx) = pandora_sim::channel::<AudioSegment>();
                let to_switch = self.to_switch.clone();
                let pool = self.pool.clone();
                let slab = self.slab.clone();
                let reports = self.log.sender();
                self.spawner
                    .spawn(&format!("{name}:audio-in-handler:{stream}"), async move {
                        while let Ok(seg) = seg_rx.recv().await {
                            let bytes = seg.wire_bytes();
                            if mic_link_tx.send_sized(seg, bytes).await.is_err() {
                                return;
                            }
                        }
                    });
                let reports2 = reports.clone();
                self.spawner
                    .spawn(&format!("{name}:server-audio-in:{stream}"), async move {
                        while let Ok(seg) = mic_link_rx.recv().await {
                            // Input handlers run lossless to the switch; only
                            // pool/slab exhaustion (serious fault) discards.
                            match alloc_slab_segment(&pool, &slab, &Segment::Audio(seg)) {
                                Some(desc) => {
                                    if to_switch.send(SegMsg { stream, desc }).await.is_err() {
                                        return;
                                    }
                                }
                                None => {
                                    let now = pandora_sim::now();
                                    let _ = reports2
                                        .send(Report::new(
                                            now,
                                            "server-audio-in",
                                            ReportClass::Fault,
                                            "pool exhausted on audio input",
                                        ))
                                        .await;
                                }
                            }
                        }
                    });
                seg_tx
            },
        );
        self.mic_stats.borrow_mut().push(stats);
        stream
    }

    /// Starts a video capture stream from the local camera.
    pub fn start_video_capture(&self, config: CaptureConfig) -> (StreamId, VideoCaptureHandle) {
        let stream = self.alloc_stream();
        let name = self.config.name;
        let fifo_cfg = LinkConfig::new(
            Box::leak(format!("{name}.capture-fifo:{stream}").into_boxed_str()),
            self.config.video_fifo_bps,
        );
        let (fifo_tx, fifo_rx) = link::<(StreamId, VideoSegment)>(&self.spawner, fifo_cfg);
        let (seg_tx, seg_rx) = pandora_sim::channel::<(StreamId, VideoSegment)>();
        let handle = spawn_video_capture(
            &self.spawner,
            name,
            stream,
            &self.camera,
            config,
            self.config.video_costs,
            self.capture_cpu.clone(),
            seg_tx,
        );
        {
            self.spawner
                .spawn(&format!("{name}:capture-fifo-pump:{stream}"), async move {
                    while let Ok((sid, seg)) = seg_rx.recv().await {
                        let bytes = seg.wire_bytes();
                        if fifo_tx.send_sized((sid, seg), bytes).await.is_err() {
                            return;
                        }
                    }
                });
        }
        {
            let to_switch = self.to_switch.clone();
            let pool = self.pool.clone();
            let slab = self.slab.clone();
            let reports = self.log.sender();
            self.spawner
                .spawn(&format!("{name}:server-video-in:{stream}"), async move {
                    while let Ok((sid, seg)) = fifo_rx.recv().await {
                        match alloc_slab_segment(&pool, &slab, &Segment::Video(seg)) {
                            Some(desc) => {
                                if to_switch.send(SegMsg { stream: sid, desc }).await.is_err() {
                                    return;
                                }
                            }
                            None => {
                                let now = pandora_sim::now();
                                let _ = reports
                                    .send(Report::new(
                                        now,
                                        "server-video-in",
                                        ReportClass::Fault,
                                        "pool exhausted on video input",
                                    ))
                                    .await;
                            }
                        }
                    }
                });
        }
        // The health monitor throttles every capture stream (P8).
        if let Some(h) = &self.health {
            h.register_capture(handle.clone());
        }
        (stream, handle)
    }

    /// Takes the repository tap (streams routed to
    /// [`OutputId::Repository`] arrive here). Can be taken once.
    pub fn take_repository_rx(&self) -> Option<Receiver<(StreamId, Segment)>> {
        self.repository_rx.borrow_mut().take()
    }

    /// Takes the session tap (control streams routed to
    /// [`OutputId::Session`] arrive here). Can be taken once — normally by
    /// the box's session agent.
    pub fn take_session_rx(&self) -> Option<Receiver<(StreamId, Segment)>> {
        self.session_rx.borrow_mut().take()
    }

    /// Injects a test segment directly into the switch (the `test in`
    /// handler of figure 3.3).
    pub async fn inject_segment(&self, stream: StreamId, segment: Segment) -> bool {
        match alloc_slab_segment(&self.pool, &self.slab, &segment) {
            Some(desc) => self.to_switch.send(SegMsg { stream, desc }).await.is_ok(),
            None => false,
        }
    }

    /// Returns a sender that feeds `(stream, segment)` pairs into this
    /// box's switch — an input device handler for external attachments
    /// (e.g. repository playback). Each call spawns a fresh handler task.
    pub fn injector(&self) -> Sender<(StreamId, Segment)> {
        let (tx, rx) = pandora_sim::channel::<(StreamId, Segment)>();
        let pool = self.pool.clone();
        let slab = self.slab.clone();
        let to_switch = self.to_switch.clone();
        let name = self.config.name;
        self.spawner.spawn(&format!("{name}:injector"), async move {
            while let Ok((stream, segment)) = rx.recv().await {
                if let Some(desc) = alloc_slab_segment(&pool, &slab, &segment) {
                    if to_switch.send(SegMsg { stream, desc }).await.is_err() {
                        return;
                    }
                }
            }
        });
        tx
    }

    /// The muting state machine, when enabled.
    pub fn muting(&self) -> Option<Rc<RefCell<Muting>>> {
        self.muting.clone()
    }

    /// Handles onto the box's decoupling buffers, for diagnostics — the
    /// paper's "a command can be used to request a report from the buffer
    /// process" made programmatic.
    pub fn buffer_handles(&self) -> Vec<pandora_buffers::DecouplingHandle> {
        self.buffer_handles.borrow().clone()
    }

    /// Capture statistics of started audio sources, in start order.
    pub fn mic_stats(&self) -> Vec<CaptureStats> {
        self.mic_stats.borrow().clone()
    }
}

/// A pair of boxes joined by symmetric multi-hop ATM paths.
pub struct BoxPair {
    /// First box.
    pub a: PandoraBox,
    /// Second box.
    pub b: PandoraBox,
    /// Loss stats of the a→b path hops.
    pub a_to_b: Vec<pandora_atm::StageStats>,
    /// Loss stats of the b→a path hops.
    pub b_to_a: Vec<pandora_atm::StageStats>,
    /// Fault-injection control of the a→b path (links and egress stage).
    pub a_to_b_ctrl: pandora_atm::PathControl,
    /// Fault-injection control of the b→a path.
    pub b_to_a_ctrl: pandora_atm::PathControl,
}

/// Connects two boxes with the given hop profile in each direction.
///
/// The paths are built with fault-injection controls (left inert unless
/// driven); an untouched control leaves behaviour identical to the plain
/// [`pandora_atm::build_path`] wiring.
pub fn connect_pair(
    spawner: &Spawner,
    cfg_a: BoxConfig,
    cfg_b: BoxConfig,
    hops: &[pandora_atm::HopConfig],
    seed: u64,
) -> BoxPair {
    let duplex = pandora_atm::build_duplex_path(spawner, "pair", hops, seed);
    let a = PandoraBox::new(spawner, cfg_a, duplex.a_tx, duplex.a_rx);
    let b = PandoraBox::new(spawner, cfg_b, duplex.b_tx, duplex.b_rx);
    BoxPair {
        a,
        b,
        a_to_b: duplex.a_to_b,
        b_to_a: duplex.b_to_a,
        a_to_b_ctrl: duplex.a_to_b_ctrl,
        b_to_a_ctrl: duplex.b_to_a_ctrl,
    }
}

/// Sets up a one-way audio stream from `src` to `dst` (a "shout", §4.1).
///
/// Returns `(source stream at src, arriving stream at dst)`.
pub fn open_audio_shout(
    src: &PandoraBox,
    dst: &PandoraBox,
    signal: Box<dyn Signal>,
) -> (StreamId, StreamId) {
    let dst_stream = dst.alloc_stream();
    dst.set_route(dst_stream, StreamKind::Audio, vec![OutputId::Audio]);
    let src_stream = src.start_audio_source(signal);
    src.set_route(
        src_stream,
        StreamKind::Audio,
        vec![OutputId::Network(Vci::from_stream(dst_stream))],
    );
    (src_stream, dst_stream)
}

/// Sets up a one-way video stream from `src` to `dst`.
pub fn open_video_stream(
    src: &PandoraBox,
    dst: &PandoraBox,
    config: CaptureConfig,
) -> (StreamId, StreamId, VideoCaptureHandle) {
    let dst_stream = dst.alloc_stream();
    dst.set_route(dst_stream, StreamKind::Video, vec![OutputId::Mixer]);
    let (src_stream, handle) = src.start_video_capture(config);
    src.set_route(
        src_stream,
        StreamKind::Video,
        vec![OutputId::Network(Vci::from_stream(dst_stream))],
    );
    (src_stream, dst_stream, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_atm::HopConfig;
    use pandora_audio::gen::Tone;
    use pandora_sim::{SimDuration, Simulation};
    use pandora_video::dpcm::LineMode;
    use pandora_video::{RateFraction, Rect};

    fn clean_pair(sim: &Simulation) -> BoxPair {
        connect_pair(
            &sim.spawner(),
            BoxConfig::standard("boxa"),
            BoxConfig::standard("boxb"),
            &[HopConfig::clean(50_000_000)],
            7,
        )
    }

    #[test]
    fn audio_travels_between_boxes() {
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        sim.run_until(pandora_sim::SimTime::from_secs(2));
        assert!(
            pair.b.speaker.segments_received() > 400,
            "segments {}",
            pair.b.speaker.segments_received()
        );
        assert_eq!(pair.b.speaker.segments_lost(), 0);
        assert_eq!(pair.b.speaker.late_ticks(), 0);
        // The one-way trip time: paper's best was 8ms over a quiet network.
        let mut lat = pair.b.speaker.latency_ns();
        let p50 = lat.percentile(50.0) / 1e6;
        assert!(p50 < 15.0, "p50 one-way {p50}ms");
    }

    #[test]
    fn video_travels_between_boxes() {
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        open_video_stream(
            &pair.a,
            &pair.b,
            CaptureConfig {
                rect: Rect::new(16, 16, 128, 96),
                rate: RateFraction::new(2, 5),
                lines_per_segment: 32,
                mode: LineMode::Dpcm,
            },
        );
        sim.run_until(pandora_sim::SimTime::from_secs(2));
        let fps = pair.b.display.fps(SimDuration::from_secs(2));
        assert!((8.5..=10.5).contains(&fps), "fps {fps}");
        assert_eq!(pair.b.display.decode_errors(), 0);
    }

    #[test]
    fn duplex_call_works() {
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(300.0, 6_000.0)));
        open_audio_shout(&pair.b, &pair.a, Box::new(Tone::new(400.0, 6_000.0)));
        sim.run_until(pandora_sim::SimTime::from_secs(1));
        assert!(pair.a.speaker.segments_received() > 200);
        assert!(pair.b.speaker.segments_received() > 200);
    }

    #[test]
    fn local_loopback_stream() {
        // Mic routed to the local audio output: never touches the network.
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        let s = pair
            .a
            .start_audio_source(Box::new(Tone::new(500.0, 6_000.0)));
        pair.a
            .set_route(s, StreamKind::Audio, vec![OutputId::Audio]);
        sim.run_until(pandora_sim::SimTime::from_secs(1));
        assert!(pair.a.speaker.segments_received() > 200);
        assert_eq!(pair.a.net_out_stats.audio_segments(), 0);
    }

    #[test]
    fn no_pool_leaks_after_run() {
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        sim.run_until(pandora_sim::SimTime::from_secs(1));
        // In steady state nearly all buffers are free (a few in flight).
        assert!(
            pair.a.pool.free_count() > pair.a.pool.capacity() - 8,
            "a free {}",
            pair.a.pool.free_count()
        );
        assert!(
            pair.b.pool.free_count() > pair.b.pool.capacity() - 8,
            "b free {}",
            pair.b.pool.free_count()
        );
    }

    #[test]
    fn query_produces_host_log_entry() {
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        let (src, _dst) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        pair.a.query_stream(src);
        sim.run_until(pandora_sim::SimTime::from_millis(100));
        let infos = pair.a.log.of_class(ReportClass::Info);
        assert!(!infos.is_empty(), "no query report in host log");
    }

    #[test]
    fn clear_route_stops_traffic() {
        let mut sim = Simulation::new();
        let pair = clean_pair(&sim);
        let (src, _dst) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        sim.run_until(pandora_sim::SimTime::from_millis(500));
        let before = pair.b.speaker.segments_received();
        assert!(before > 0);
        pair.a.clear_route(src);
        sim.run_until(pandora_sim::SimTime::from_millis(600));
        let at_stop = pair.b.speaker.segments_received();
        sim.run_until(pandora_sim::SimTime::from_secs(1));
        let after = pair.b.speaker.segments_received();
        assert!(
            after - at_stop <= 2,
            "traffic kept flowing: {at_stop}->{after}"
        );
        let _ = before;
    }
}
