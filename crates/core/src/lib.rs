//! # pandora — the Pandora multimedia box
//!
//! The core crate of this reproduction of *Jones & Hopper, "Handling
//! Audio and Video Streams in a Distributed Environment" (SOSP 1993)*.
//! It assembles the substrate crates into the complete Pandora's Box and
//! implements the paper's eight design principles where they live:
//!
//! * **P1 outgoing-before-incoming** — output-side CPU claims run at
//!   higher priority ([`pandora_sim::PRIO_OUTPUT`]), so overload
//!   back-pressures the incoming side first;
//! * **P2 audio-over-video** — the figure 3.7 split: separate audio/video
//!   decoupling buffers toward the network, audio drained first
//!   ([`network_board`]);
//! * **P3 newest-stream priority** — the network scheduler drops from the
//!   longest-open stream when the video backlog exceeds its cap;
//! * **P4 command priority** — every process PRI-ALTs its command channel
//!   ahead of data ([`server_board`]);
//! * **P5 upstream independence** — ready-mode decoupling buffers and the
//!   drop-don't-block switch ([`pandora_buffers::ReadyGate`]);
//! * **P6 continuity during reconfiguration** — switch tables update
//!   between segments, never during one;
//! * **P7 minimise delay** — 2-block segments, clawback buffers at the
//!   destination, whole-path latency instrumentation;
//! * **P8 local adaptation** — clawback and muting adapt to locally
//!   observed conditions with no end-to-end cooperation.
//!
//! Start with [`connect_pair`] and [`open_audio_shout`] /
//! [`open_video_stream`], or the examples in the repository root.

pub mod audio_board;
pub mod config;
pub mod health;
pub mod hostlog;
pub mod msg;
pub mod network_board;
pub mod pandora_box;
pub mod rt;
pub mod server_board;
pub mod video_boards;

pub use audio_board::{PlaybackConfig, SpeakerSink};
pub use config::{BoxConfig, TxMode, VideoCosts};
pub use health::HealthBoard;
pub use hostlog::ReportLog;
pub use msg::{OutputId, SegMsg, StreamKind, SwitchCommand, SwitchEntry};
pub use network_board::{NetInStats, NetOutConfig, NetOutStats};
pub use pandora_box::{connect_pair, open_audio_shout, open_video_stream, BoxPair, PandoraBox};
pub use server_board::{NetMsg, SwitchOutputs, SwitchStats};
pub use video_boards::{Camera, DisplaySink, VideoCaptureHandle};
