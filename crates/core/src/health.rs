//! The per-box stream-health monitor: P8 local adaptation.
//!
//! Principle 8 says a box must adapt to trouble *locally*, without
//! waiting for (or depending on) the control plane: the sender cannot
//! know what every receiver can take, and during a failure the
//! controller may be busy reconverging. The [`HealthBoard`] is that
//! local loop. Once per window it samples the box's own counters —
//! audio sequence gaps and late mix ticks at the speaker, Principle-3
//! drops at the network output — and feeds them to the
//! `pandora-recover` adaptation machines:
//!
//! * sustained **audio** loss engages the speaker mute (audio is muted,
//!   never degraded — Principle 2); clean windows release it after the
//!   recovery hysteresis;
//! * sustained **video** pressure steps the capture divisor up
//!   (degrade-to-fit: video gives way first, Principles 2/3), and clean
//!   windows step it back down to full rate.
//!
//! Everything runs on the deterministic sim clock, so a fault plan that
//! crashes a conference member produces byte-identical adaptation
//! traces across replays.

use std::cell::RefCell;
use std::rc::Rc;

use pandora_recover::{AdaptAction, AdaptMachine, HealthConfig, MediaClass, WindowSample};
use pandora_sim::Spawner;

use crate::audio_board::SpeakerSink;
use crate::network_board::NetOutStats;
use crate::video_boards::VideoCaptureHandle;

struct HealthInner {
    audio: AdaptMachine,
    video: AdaptMachine,
    captures: Vec<VideoCaptureHandle>,
    windows: u64,
    // Previous counter snapshots (the board samples deltas).
    prev_audio_recv: u64,
    prev_audio_lost: u64,
    prev_late: u64,
    prev_video_sent: u64,
    prev_video_drops: u64,
}

/// Shared handle to one box's health monitor.
#[derive(Clone)]
pub struct HealthBoard {
    inner: Rc<RefCell<HealthInner>>,
}

impl HealthBoard {
    /// Spawns the monitor task (`<name>:health`) sampling `speaker` and
    /// `net_out` every `config.window` and applying the adaptation
    /// actions locally: mute/unmute on the speaker, divisor steps on
    /// every registered capture handle.
    pub fn spawn(
        spawner: &Spawner,
        name: &str,
        config: HealthConfig,
        speaker: SpeakerSink,
        net_out: NetOutStats,
    ) -> HealthBoard {
        let board = HealthBoard {
            inner: Rc::new(RefCell::new(HealthInner {
                audio: AdaptMachine::new(MediaClass::Audio, config),
                video: AdaptMachine::new(MediaClass::Video, config),
                captures: Vec::new(),
                windows: 0,
                prev_audio_recv: 0,
                prev_audio_lost: 0,
                prev_late: 0,
                prev_video_sent: 0,
                prev_video_drops: 0,
            })),
        };
        let b = board.clone();
        spawner.spawn(&format!("{name}:health"), async move {
            loop {
                pandora_sim::delay(config.window).await;
                // Audio receive health: sequence gaps and late mix
                // ticks at the speaker.
                let (recv, lost) = speaker
                    .stream_stats()
                    .iter()
                    .fold((0u64, 0u64), |(r, l), &(_, sr, sl)| (r + sr, l + sl));
                let late = speaker.late_ticks();
                // Video transmit health: local congestion evidence —
                // the Principle-3 policy dropping our own backlog.
                let sent = net_out.video_segments();
                let drops = net_out.p3_drops_total();
                let mut inner = b.inner.borrow_mut();
                inner.windows += 1;
                let audio_sample = WindowSample {
                    received: recv - inner.prev_audio_recv,
                    gaps: lost - inner.prev_audio_lost,
                    late: late - inner.prev_late,
                };
                let video_sample = WindowSample {
                    received: sent - inner.prev_video_sent,
                    gaps: drops - inner.prev_video_drops,
                    late: 0,
                };
                inner.prev_audio_recv = recv;
                inner.prev_audio_lost = lost;
                inner.prev_late = late;
                inner.prev_video_sent = sent;
                inner.prev_video_drops = drops;
                match inner.audio.observe(&audio_sample) {
                    Some(AdaptAction::Mute) => speaker.set_muted(true),
                    Some(AdaptAction::Unmute) => speaker.set_muted(false),
                    _ => {}
                }
                if let Some(AdaptAction::SetDivisor(d)) = inner.video.observe(&video_sample) {
                    for h in &inner.captures {
                        h.set_divisor(d);
                    }
                }
            }
        });
        board
    }

    /// Registers a capture stream for divisor control; the current
    /// divisor is applied immediately so late-started streams match the
    /// machine's state.
    pub fn register_capture(&self, handle: VideoCaptureHandle) {
        let mut inner = self.inner.borrow_mut();
        handle.set_divisor(inner.video.state().divisor);
        inner.captures.push(handle);
    }

    /// Sampling windows closed so far.
    pub fn windows(&self) -> u64 {
        self.inner.borrow().windows
    }

    /// The video machine's current divisor.
    pub fn video_divisor(&self) -> u32 {
        self.inner.borrow().video.state().divisor
    }

    /// Whether the audio machine currently holds the mute.
    pub fn audio_muted(&self) -> bool {
        self.inner.borrow().audio.state().muted
    }

    /// Deterministic one-line digest of both machines, for replay
    /// assertions: `windows=N audio[...] video[...]`.
    pub fn digest(&self) -> String {
        let inner = self.inner.borrow();
        format!(
            "windows={} audio[{}] video[{}]",
            inner.windows,
            inner.audio.digest(),
            inner.video.digest()
        )
    }
}
