//! # pandora-faults — deterministic fault injection
//!
//! The paper's principles (P1–P8, §2) are promises about behaviour *under
//! error and overload*: where loss lands when links drop cells, consumers
//! stall and clocks step. This crate turns those adversities into
//! first-class, replayable inputs:
//!
//! * a [`FaultPlan`] declares *what* goes wrong and *when* — scripted
//!   event by event, or generated from a seed by [`FaultPlan::random`];
//! * [`FaultTargets`] names the injection points a topology exposes:
//!   [`PathControl`]s from `pandora_atm::build_path_controlled`,
//!   [`TickerHandle`]s, [`Cpu`]s — plus task-name prefixes for
//!   pause/resume, which need no registration;
//! * [`install`] spawns a driver task that actuates each event at its
//!   virtual time and logs every application and reversion into a
//!   [`FaultTrace`].
//!
//! Determinism guarantee: the same plan against the same topology yields a
//! byte-identical [`FaultTrace::to_text`] and an identical simulation
//! schedule, because every random choice comes from seeded generators and
//! actuation happens at virtual-time instants inside the single-threaded
//! executor. A run's injected faults are therefore part of its
//! reproducible output, exactly like its metrics.

use std::cell::RefCell;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pandora_atm::PathControl;
use pandora_sim::{Cpu, Priority, SimDuration, SimTime, Spawner, TickerHandle};

/// One kind of injectable fault. Targets are referred to by the names they
/// were registered under in [`FaultTargets`] (or, for [`PauseTasks`],
/// by task-name prefix).
///
/// [`PauseTasks`]: FaultKind::PauseTasks
// check:wire-enum(encode): every fault kind must be named in the
// injection and trace-formatting matches; a catch-all would let a new
// fault silently no-op in replays.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Superimposed Bernoulli cell loss on a path's egress.
    CellLossBurst {
        /// Registered path name.
        path: String,
        /// Per-cell drop probability while active.
        prob: f64,
    },
    /// Per-cell payload corruption on a path's egress (one byte XORed, so
    /// frames fail to decode downstream instead of vanishing).
    CellCorruption {
        /// Registered path name.
        path: String,
        /// Per-cell corruption probability while active.
        prob: f64,
    },
    /// A constant extra delay on a path — the §3.7.2 jitter step. Applying
    /// it opens a gap; reverting it drains a burst.
    LatencyStep {
        /// Registered path name.
        path: String,
        /// Extra delay while active.
        extra: SimDuration,
    },
    /// Takes one hop link of a path down (a link flap when paired with a
    /// duration).
    LinkDown {
        /// Registered path name.
        path: String,
        /// Hop index within the path.
        hop: usize,
    },
    /// Collapses one hop link's bandwidth to `permille`/1000 of nominal.
    BandwidthCollapse {
        /// Registered path name.
        path: String,
        /// Hop index within the path.
        hop: usize,
        /// Remaining bandwidth in permille of nominal (1000 = unchanged).
        permille: u64,
    },
    /// Pauses every task whose name starts with `prefix` — a stalled
    /// consumer, or a whole crashed box (box task names share the box
    /// name as a prefix). Reverting resumes them and replays any wake-ups
    /// that arrived while paused.
    PauseTasks {
        /// Task-name prefix to pause.
        prefix: String,
    },
    /// Crashes a whole Pandora's Box: pauses every one of the box's task
    /// families (switch, boards, handlers — see [`box_task_prefixes`]).
    /// Reverting (or a later [`BoxRestart`]) resumes them, replaying the
    /// wake-ups that arrived while down — the box restarts with its
    /// pre-crash state, so recovery must clean stale state up explicitly.
    ///
    /// Prefix caveat: like [`PauseTasks`], matching is by name prefix, so
    /// a box name that prefixes another (`node1` / `node10`) would also
    /// crash the longer-named box's bare-prefix families. Use distinct
    /// non-prefix names for crash targets.
    ///
    /// [`BoxRestart`]: FaultKind::BoxRestart
    /// [`PauseTasks`]: FaultKind::PauseTasks
    BoxCrash {
        /// The box's configured name (e.g. `node3`).
        name: String,
    },
    /// Restarts a box crashed by a permanent [`BoxCrash`]: resumes all of
    /// its task families. Reverting is a no-op (a restart is
    /// instantaneous).
    ///
    /// [`BoxCrash`]: FaultKind::BoxCrash
    BoxRestart {
        /// The box's configured name.
        name: String,
    },
    /// Changes a ticker crystal's relative drift; reverting restores 0.
    DriftChange {
        /// Registered ticker name.
        ticker: String,
        /// New relative drift (e.g. `1e-4`).
        drift: f64,
    },
    /// Steps a ticker's local clock; reverting steps it back.
    ClockStep {
        /// Registered ticker name.
        ticker: String,
        /// `true` steps the clock forward (a burst of early ticks),
        /// `false` backward (a gap).
        forward: bool,
        /// Step magnitude.
        by: SimDuration,
    },
    /// Rogue CPU load: `claimants` tasks each claim the CPU for `cost` in
    /// a tight loop at normal priority, saturating it until the event's
    /// duration elapses (P1's adversary: competing work that must not
    /// starve the output processes).
    CpuLoad {
        /// Registered CPU name.
        cpu: String,
        /// Number of competing claimant tasks.
        claimants: usize,
        /// CPU time per claim.
        cost: SimDuration,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::CellLossBurst { path, prob } => {
                write!(f, "cell-loss path={path} prob={prob:.4}")
            }
            FaultKind::CellCorruption { path, prob } => {
                write!(f, "cell-corruption path={path} prob={prob:.4}")
            }
            FaultKind::LatencyStep { path, extra } => {
                write!(f, "latency-step path={path} extra={extra}")
            }
            FaultKind::LinkDown { path, hop } => write!(f, "link-down path={path} hop={hop}"),
            FaultKind::BandwidthCollapse {
                path,
                hop,
                permille,
            } => write!(
                f,
                "bandwidth-collapse path={path} hop={hop} permille={permille}"
            ),
            FaultKind::PauseTasks { prefix } => write!(f, "pause-tasks prefix={prefix}"),
            FaultKind::BoxCrash { name } => write!(f, "box-crash name={name}"),
            FaultKind::BoxRestart { name } => write!(f, "box-restart name={name}"),
            FaultKind::DriftChange { ticker, drift } => {
                write!(f, "drift-change ticker={ticker} drift={drift:e}")
            }
            FaultKind::ClockStep {
                ticker,
                forward,
                by,
            } => write!(
                f,
                "clock-step ticker={ticker} dir={} by={by}",
                if *forward { "forward" } else { "backward" }
            ),
            FaultKind::CpuLoad {
                cpu,
                claimants,
                cost,
            } => write!(f, "cpu-load cpu={cpu} claimants={claimants} cost={cost}"),
        }
    }
}

impl FaultKind {
    /// The name of the target this fault aims at — a path, ticker or CPU
    /// registration name, a task prefix, or a box name. Sharded runners
    /// use this to decide which shard owns an event (the one whose
    /// topology slice registered the target), so a plan can be installed
    /// with [`install_scoped`] on every shard without double-actuation.
    pub fn target_name(&self) -> &str {
        match self {
            FaultKind::CellLossBurst { path, .. }
            | FaultKind::CellCorruption { path, .. }
            | FaultKind::LatencyStep { path, .. }
            | FaultKind::LinkDown { path, .. }
            | FaultKind::BandwidthCollapse { path, .. } => path,
            FaultKind::PauseTasks { prefix } => prefix,
            FaultKind::BoxCrash { name } | FaultKind::BoxRestart { name } => name,
            FaultKind::DriftChange { ticker, .. } | FaultKind::ClockStep { ticker, .. } => ticker,
            FaultKind::CpuLoad { cpu, .. } => cpu,
        }
    }
}

/// One scheduled fault: what happens, when, and for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault is applied, measured from [`install`] time.
    pub at: SimDuration,
    /// How long it stays applied; `None` means it is never reverted.
    pub duration: Option<SimDuration>,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A declarative schedule of faults. Build one event by event with
/// [`FaultPlan::scripted`]/[`FaultPlan::event`], or derive a whole
/// adversarial schedule from a seed with [`FaultPlan::random`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for scripted plans);
    /// recorded in the trace header so a run names its adversary.
    pub seed: u64,
    /// The scheduled faults. Order does not matter; [`install`] sorts by
    /// time (stable, so same-instant events keep declaration order).
    pub events: Vec<FaultEvent>,
}

/// Knobs for [`FaultPlan::random`]: the target names the generated plan
/// may aim at, the time horizon, and intensity bounds.
#[derive(Debug, Clone)]
pub struct RandomProfile {
    /// Run length the plan must fit inside. Events start after 10% of the
    /// horizon and every reverting fault ends by 90%, leaving a clean
    /// tail for recovery assertions.
    pub horizon: SimDuration,
    /// Number of events to generate.
    pub events: usize,
    /// Path names eligible for loss/corruption/latency/link faults.
    pub paths: Vec<String>,
    /// Task-name prefixes eligible for pause/resume faults.
    pub pause_prefixes: Vec<String>,
    /// Ticker names eligible for drift/step faults.
    pub tickers: Vec<String>,
    /// CPU names eligible for rogue-load faults.
    pub cpus: Vec<String>,
    /// Upper bound on injected cell-loss probability.
    pub max_loss: f64,
    /// Upper bound on injected corruption probability.
    pub max_corruption: f64,
    /// Upper bound on an injected latency step.
    pub max_extra_delay: SimDuration,
}

impl RandomProfile {
    /// A profile over `horizon` with `events` events and default
    /// intensity bounds; fill in the target name lists before use.
    pub fn new(horizon: SimDuration, events: usize) -> Self {
        RandomProfile {
            horizon,
            events,
            paths: Vec::new(),
            pause_prefixes: Vec::new(),
            tickers: Vec::new(),
            cpus: Vec::new(),
            max_loss: 0.3,
            max_corruption: 0.2,
            max_extra_delay: SimDuration::from_millis(20),
        }
    }
}

impl FaultPlan {
    /// A plan from an explicit event list (seed recorded as 0).
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        FaultPlan { seed: 0, events }
    }

    /// Appends one event, builder style.
    pub fn event(
        mut self,
        at: SimDuration,
        duration: Option<SimDuration>,
        kind: FaultKind,
    ) -> Self {
        self.events.push(FaultEvent { at, duration, kind });
        self
    }

    /// Generates a seeded adversarial schedule over the targets named in
    /// `profile`. The same seed and profile always produce the same plan.
    ///
    /// # Panics
    ///
    /// Panics if the profile names no targets at all.
    pub fn random(seed: u64, profile: &RandomProfile) -> Self {
        // One menu entry per (target, fault shape); choices index into it.
        enum Menu<'a> {
            Loss(&'a str),
            Corrupt(&'a str),
            Latency(&'a str),
            LinkDown(&'a str),
            Bandwidth(&'a str),
            Pause(&'a str),
            Drift(&'a str),
            Step(&'a str),
            Load(&'a str),
        }
        let mut menu: Vec<Menu> = Vec::new();
        for p in &profile.paths {
            menu.push(Menu::Loss(p));
            menu.push(Menu::Corrupt(p));
            menu.push(Menu::Latency(p));
            menu.push(Menu::LinkDown(p));
            menu.push(Menu::Bandwidth(p));
        }
        for p in &profile.pause_prefixes {
            menu.push(Menu::Pause(p));
        }
        for t in &profile.tickers {
            menu.push(Menu::Drift(t));
            menu.push(Menu::Step(t));
        }
        for c in &profile.cpus {
            menu.push(Menu::Load(c));
        }
        assert!(!menu.is_empty(), "random plan needs at least one target");

        let mut rng = SmallRng::seed_from_u64(seed);
        let h = profile.horizon.as_nanos();
        // Uniform f64 in [0, 1) from the integer API the shim provides.
        let unit = |rng: &mut SmallRng| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let mut events = Vec::with_capacity(profile.events);
        for _ in 0..profile.events {
            let at = rng.gen_range(h / 10..=h * 6 / 10);
            let max_dur = (h * 9 / 10).saturating_sub(at).max(1);
            let dur = rng.gen_range((h / 100).min(max_dur)..=(h / 5).min(max_dur).max(1));
            let (kind, duration) = match menu[rng.gen_range(0..menu.len())] {
                Menu::Loss(p) => (
                    FaultKind::CellLossBurst {
                        path: p.to_string(),
                        prob: 0.02 + unit(&mut rng) * (profile.max_loss - 0.02).max(0.0),
                    },
                    Some(SimDuration(dur)),
                ),
                Menu::Corrupt(p) => (
                    FaultKind::CellCorruption {
                        path: p.to_string(),
                        prob: 0.02 + unit(&mut rng) * (profile.max_corruption - 0.02).max(0.0),
                    },
                    Some(SimDuration(dur)),
                ),
                Menu::Latency(p) => (
                    FaultKind::LatencyStep {
                        path: p.to_string(),
                        extra: SimDuration(rng.gen_range(
                            1_000_000..=profile.max_extra_delay.as_nanos().max(1_000_001),
                        )),
                    },
                    Some(SimDuration(dur)),
                ),
                Menu::LinkDown(p) => (
                    FaultKind::LinkDown {
                        path: p.to_string(),
                        hop: 0,
                    },
                    // Keep outages short: a long dead link just starves
                    // the run of data.
                    Some(SimDuration(dur.min(h / 20).max(1))),
                ),
                Menu::Bandwidth(p) => (
                    FaultKind::BandwidthCollapse {
                        path: p.to_string(),
                        hop: 0,
                        permille: rng.gen_range(100..=600),
                    },
                    Some(SimDuration(dur)),
                ),
                Menu::Pause(p) => (
                    FaultKind::PauseTasks {
                        prefix: p.to_string(),
                    },
                    Some(SimDuration(dur.min(h / 20).max(1))),
                ),
                Menu::Drift(t) => (
                    FaultKind::DriftChange {
                        ticker: t.to_string(),
                        drift: if rng.gen_bool(0.5) { 1.0 } else { -1.0 }
                            * (1e-5 + unit(&mut rng) * 1e-3),
                    },
                    Some(SimDuration(dur)),
                ),
                Menu::Step(t) => (
                    FaultKind::ClockStep {
                        ticker: t.to_string(),
                        forward: rng.gen_bool(0.5),
                        by: SimDuration(rng.gen_range(1_000_000..=50_000_000)),
                    },
                    Some(SimDuration(dur)),
                ),
                Menu::Load(c) => (
                    FaultKind::CpuLoad {
                        cpu: c.to_string(),
                        claimants: rng.gen_range(2..=5u32) as usize,
                        cost: SimDuration(rng.gen_range(200_000..=1_500_000)),
                    },
                    Some(SimDuration(dur)),
                ),
            };
            events.push(FaultEvent {
                at: SimDuration(at),
                duration,
                kind,
            });
        }
        FaultPlan { seed, events }
    }

    /// Appends a crash of box `name` at `crash_at` and its restart
    /// `down_for` later — the standard crash/recover scenario the
    /// conformance suite replays. The crash is permanent (no auto-revert)
    /// so the downtime is owned entirely by the paired
    /// [`FaultKind::BoxRestart`]; both land in the [`FaultTrace`] as
    /// ordinary apply lines, replayable byte-identically.
    /// Appends an uplink capacity cap: the first hop of path `name`
    /// (an overlay relay's uplink registers itself as a one-hop path)
    /// drops to `permille`/1000 of nominal bandwidth at `at` and reverts
    /// automatically `for_` later. The squeeze-and-release shape that
    /// drives the P3 (drop-oldest under backlog) and P8 (locally degrade,
    /// then recover) machinery on the capped member.
    pub fn uplink_cap(self, name: &str, at: SimDuration, for_: SimDuration, permille: u64) -> Self {
        self.event(
            at,
            Some(for_),
            FaultKind::BandwidthCollapse {
                path: name.to_string(),
                hop: 0,
                permille,
            },
        )
    }

    pub fn crash_restart(self, name: &str, crash_at: SimDuration, down_for: SimDuration) -> Self {
        self.event(
            crash_at,
            None,
            FaultKind::BoxCrash {
                name: name.to_string(),
            },
        )
        .event(
            crash_at + down_for,
            None,
            FaultKind::BoxRestart {
                name: name.to_string(),
            },
        )
    }

    /// Canonical plain-text rendering of the plan, one event per line;
    /// byte-identical for equal plans.
    pub fn to_text(&self) -> String {
        let mut out = format!("plan seed={} events={}\n", self.seed, self.events.len());
        for ev in &self.events {
            match ev.duration {
                Some(d) => out.push_str(&format!(
                    "  at={:012} dur={:012} {}\n",
                    ev.at.as_nanos(),
                    d.as_nanos(),
                    ev.kind
                )),
                None => out.push_str(&format!(
                    "  at={:012} dur=permanent {}\n",
                    ev.at.as_nanos(),
                    ev.kind
                )),
            }
        }
        out
    }
}

/// The task-name prefixes that together cover one Pandora's Box — its
/// board tasks are spread over several naming families (`{name}:…`
/// handlers and agents, `switch:{name}`, `audio:{name}:…`,
/// `net-in:{name}` / `net-out:{name}`, and the video board tasks), so a
/// box crash must pause all of them. The box's fabric attachment is
/// deliberately *not* covered: a crashed box leaves the wire up, and
/// cells aimed at it queue or drop at the edge (Principle 5).
///
/// Matching is by prefix — crash targets must not be name-prefixes of
/// other boxes (see [`FaultKind::BoxCrash`]).
pub fn box_task_prefixes(name: &str) -> Vec<String> {
    vec![
        format!("{name}:"),
        format!("switch:{name}"),
        format!("audio:{name}:"),
        format!("net-in:{name}"),
        format!("net-out:{name}"),
        format!("camera:{name}"),
        format!("video-capture:{name}:"),
        format!("video-display:{name}"),
    ]
}

/// The injection points a topology exposes to a plan, by name.
///
/// Cloning shares the registry (handles are all reference-counted).
#[derive(Clone, Default)]
pub struct FaultTargets {
    paths: Vec<(String, PathControl)>,
    tickers: Vec<(String, TickerHandle)>,
    cpus: Vec<(String, Cpu)>,
}

impl FaultTargets {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a path control under `name`.
    pub fn register_path(&mut self, name: &str, ctrl: PathControl) {
        self.paths.push((name.to_string(), ctrl));
    }

    /// Registers a ticker handle under `name`.
    pub fn register_ticker(&mut self, name: &str, handle: TickerHandle) {
        self.tickers.push((name.to_string(), handle));
    }

    /// Registers a CPU under `name`.
    pub fn register_cpu(&mut self, name: &str, cpu: Cpu) {
        self.cpus.push((name.to_string(), cpu));
    }

    fn path(&self, name: &str) -> Option<&PathControl> {
        self.paths.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    fn ticker(&self, name: &str) -> Option<&TickerHandle> {
        self.tickers.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    fn cpu(&self, name: &str) -> Option<&Cpu> {
        self.cpus.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }
}

/// One line of a [`FaultTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the action.
    pub at: SimTime,
    /// What happened, in the canonical `apply`/`revert`/`skip` wording.
    pub line: String,
}

/// The replayable record of everything a plan actually did: one entry per
/// application, reversion or skipped (unresolvable) event, in execution
/// order. Equal seeds and topologies yield byte-identical
/// [`FaultTrace::to_text`] output — asserted by the conformance suite.
#[derive(Clone, Default)]
pub struct FaultTrace {
    entries: Rc<RefCell<Vec<TraceEntry>>>,
}

impl FaultTrace {
    fn log(&self, at: SimTime, line: String) {
        self.entries.borrow_mut().push(TraceEntry { at, line });
    }

    /// Snapshot of the entries so far, in execution order.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.borrow().clone()
    }

    /// Number of entries so far.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether nothing has been logged yet.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// Canonical plain-text rendering: `t=<nanos> <line>` per entry.
    /// Byte-identical across runs with the same plan and topology.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in self.entries.borrow().iter() {
            out.push_str(&format!("t={:012} {}\n", e.at.as_nanos(), e.line));
        }
        out
    }
}

fn actuate(
    targets: &FaultTargets,
    kind: &FaultKind,
    revert: bool,
    duration: Option<SimDuration>,
) -> Result<String, String> {
    let phase = if revert { "revert" } else { "apply" };
    match kind {
        FaultKind::CellLossBurst { path, prob } => {
            let Some(c) = targets.path(path) else {
                return Err(format!("unknown path {path}"));
            };
            c.set_loss(if revert { 0.0 } else { *prob });
        }
        FaultKind::CellCorruption { path, prob } => {
            let Some(c) = targets.path(path) else {
                return Err(format!("unknown path {path}"));
            };
            c.set_corruption(if revert { 0.0 } else { *prob });
        }
        FaultKind::LatencyStep { path, extra } => {
            let Some(c) = targets.path(path) else {
                return Err(format!("unknown path {path}"));
            };
            c.set_extra_delay(if revert { SimDuration::ZERO } else { *extra });
        }
        FaultKind::LinkDown { path, hop } => {
            let Some(l) = targets.path(path).and_then(|c| c.link(*hop).cloned()) else {
                return Err(format!("unknown link {path}.{hop}"));
            };
            l.set_up(revert);
        }
        FaultKind::BandwidthCollapse {
            path,
            hop,
            permille,
        } => {
            let Some(l) = targets.path(path).and_then(|c| c.link(*hop).cloned()) else {
                return Err(format!("unknown link {path}.{hop}"));
            };
            l.set_rate_permille(if revert { 1000 } else { *permille });
        }
        FaultKind::PauseTasks { prefix } => {
            let n = if revert {
                pandora_sim::resume_matching(prefix)
            } else {
                pandora_sim::pause_matching(prefix)
            };
            return Ok(format!("{phase} {kind} tasks={n}"));
        }
        FaultKind::BoxCrash { name } => {
            let mut n = 0;
            for prefix in box_task_prefixes(name) {
                n += if revert {
                    pandora_sim::resume_matching(&prefix)
                } else {
                    pandora_sim::pause_matching(&prefix)
                };
            }
            return Ok(format!("{phase} {kind} tasks={n}"));
        }
        FaultKind::BoxRestart { name } => {
            if revert {
                return Ok(format!("{phase} {kind}"));
            }
            let mut n = 0;
            for prefix in box_task_prefixes(name) {
                n += pandora_sim::resume_matching(&prefix);
            }
            return Ok(format!("{phase} {kind} tasks={n}"));
        }
        FaultKind::DriftChange { ticker, drift } => {
            let Some(h) = targets.ticker(ticker) else {
                return Err(format!("unknown ticker {ticker}"));
            };
            h.set_drift(if revert { 0.0 } else { *drift });
        }
        FaultKind::ClockStep {
            ticker,
            forward,
            by,
        } => {
            let Some(h) = targets.ticker(ticker) else {
                return Err(format!("unknown ticker {ticker}"));
            };
            // Reverting a step steps the clock back the other way.
            if *forward != revert {
                h.step_forward(*by);
            } else {
                h.step_backward(*by);
            }
        }
        FaultKind::CpuLoad {
            cpu,
            claimants,
            cost,
        } => {
            if revert {
                // The claimant tasks watch the end time themselves.
                return Ok(format!("{phase} {kind}"));
            }
            let Some(c) = targets.cpu(cpu) else {
                return Err(format!("unknown cpu {cpu}"));
            };
            let end = duration.map(|d| pandora_sim::now() + d);
            for k in 0..*claimants {
                let cpu = c.clone();
                let cost = *cost;
                pandora_sim::spawn(
                    &format!("faults:hog:{}:{k}", cpu.name().to_owned()),
                    async move {
                        loop {
                            if let Some(e) = end {
                                if pandora_sim::now() >= e {
                                    return;
                                }
                            }
                            cpu.claim(cost).await;
                        }
                    },
                );
            }
        }
    }
    Ok(format!("{phase} {kind}"))
}

/// Installs `plan` into a running topology: spawns a high-priority driver
/// task (`faults:driver`) that applies each event at its virtual time and
/// reverts it when its duration elapses, logging everything into the
/// returned [`FaultTrace`].
///
/// Events naming unregistered targets are logged as `skip` lines rather
/// than failing the run, so a generic plan can be replayed against a
/// topology that only exposes some of its targets.
pub fn install(spawner: &Spawner, plan: &FaultPlan, targets: &FaultTargets) -> FaultTrace {
    let header = format!("install seed={} events={}", plan.seed, plan.events.len());
    install_inner(spawner, plan, targets, Some(header), |_| true)
}

/// Like [`install`], but for one shard of a partitioned topology: only
/// events whose kind `owns` accepts are scheduled, and no `install`
/// header line is logged. Install the same plan on every shard, each
/// scoping to the targets its topology slice registered (see
/// [`FaultKind::target_name`]): the per-shard traces, concatenated and
/// sorted by time, are then byte-identical to the trace a single-shard
/// run produces from the same plan via the same function with an
/// all-owning scope — which is exactly how the cross-executor
/// equivalence suite compares fault schedules.
pub fn install_scoped(
    spawner: &Spawner,
    plan: &FaultPlan,
    targets: &FaultTargets,
    owns: impl Fn(&FaultKind) -> bool + 'static,
) -> FaultTrace {
    install_inner(spawner, plan, targets, None, owns)
}

fn install_inner(
    spawner: &Spawner,
    plan: &FaultPlan,
    targets: &FaultTargets,
    header: Option<String>,
    owns: impl Fn(&FaultKind) -> bool + 'static,
) -> FaultTrace {
    let trace = FaultTrace::default();
    let mut events: Vec<FaultEvent> = plan.events.clone();
    events.sort_by_key(|e| e.at); // Stable: same-instant keeps plan order.
                                  // Enumerate before scoping so revert-task names are stable across
                                  // partitionings.
    let events: Vec<(usize, FaultEvent)> = events
        .into_iter()
        .enumerate()
        .filter(|(_, ev)| owns(&ev.kind))
        .collect();
    let tr = trace.clone();
    let targets = targets.clone();
    spawner.spawn_prio("faults:driver", Priority::High, async move {
        let start = pandora_sim::now();
        if let Some(header) = header {
            tr.log(start, header);
        }
        for (idx, ev) in events {
            pandora_sim::delay_until(start + ev.at).await;
            match actuate(&targets, &ev.kind, false, ev.duration) {
                Ok(line) => {
                    tr.log(pandora_sim::now(), line);
                    if let Some(d) = ev.duration {
                        let revert_at = start + ev.at + d;
                        let tr2 = tr.clone();
                        let tg2 = targets.clone();
                        let kind = ev.kind.clone();
                        pandora_sim::spawn_prio(
                            &format!("faults:revert:{idx}"),
                            Priority::High,
                            async move {
                                pandora_sim::delay_until(revert_at).await;
                                let line = match actuate(&tg2, &kind, true, None) {
                                    Ok(line) => line,
                                    Err(why) => format!("skip revert {kind}: {why}"),
                                };
                                tr2.log(pandora_sim::now(), line);
                            },
                        );
                    }
                }
                Err(why) => tr.log(pandora_sim::now(), format!("skip {}: {why}", ev.kind)),
            }
        }
    });
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_atm::{build_path_controlled, Cell, HopConfig, Vci};
    use pandora_sim::{SimTime, Simulation};
    use std::cell::Cell as StdCell;

    fn plan_profile() -> RandomProfile {
        let mut p = RandomProfile::new(SimDuration::from_secs(20), 8);
        p.paths = vec!["a-b".into(), "b-a".into()];
        p.pause_prefixes = vec!["b:mixer".into()];
        p.tickers = vec!["mic".into()];
        p.cpus = vec!["audio".into()];
        p
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let p = plan_profile();
        let a = FaultPlan::random(42, &p);
        let b = FaultPlan::random(42, &p);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        let c = FaultPlan::random(43, &p);
        assert_ne!(a.to_text(), c.to_text(), "different seeds must differ");
        // All events fit the horizon with a recovery tail.
        let h = p.horizon.as_nanos();
        for ev in &a.events {
            let end = ev.at.as_nanos() + ev.duration.map_or(0, |d| d.as_nanos());
            assert!(end <= h * 9 / 10, "event overruns horizon: {}", ev.kind);
        }
    }

    #[test]
    fn uplink_cap_applies_and_auto_reverts() {
        fn run() -> String {
            let mut sim = Simulation::new();
            let (_tx, _rx, lc) = pandora_sim::link_controlled::<Cell>(
                &sim.spawner(),
                pandora_sim::LinkConfig::new("up", 1_000_000),
            );
            let mut targets = FaultTargets::new();
            targets.register_path("node7.up", PathControl::from_links(vec![lc]));
            let plan = FaultPlan::scripted(Vec::new()).uplink_cap(
                "node7.up",
                SimDuration::from_millis(5),
                SimDuration::from_millis(10),
                250,
            );
            let trace = install(&sim.spawner(), &plan, &targets);
            sim.run_until(SimTime::from_millis(30));
            trace.to_text()
        }
        let text = run();
        assert!(
            text.contains("apply bandwidth-collapse path=node7.up hop=0 permille=250"),
            "{text}"
        );
        assert!(
            text.contains("revert bandwidth-collapse path=node7.up"),
            "{text}"
        );
        assert_eq!(text, run(), "cap schedule must replay byte-identically");
    }

    fn loss_burst_run(seed: u64) -> (String, u64) {
        let mut sim = Simulation::new();
        let (tx, rx, _stats, ctrl) =
            build_path_controlled(&sim.spawner(), "a-b", &[HopConfig::clean(1_000_000_000)], 7);
        let mut targets = FaultTargets::new();
        targets.register_path("a-b", ctrl);
        let plan = FaultPlan::default().event(
            SimDuration::from_millis(100),
            Some(SimDuration::from_millis(200)),
            FaultKind::CellLossBurst {
                path: "a-b".into(),
                prob: 0.5,
            },
        );
        let trace = install(&sim.spawner(), &plan, &targets);
        let _ = seed; // Topology seed is fixed; the plan is the variable.
        sim.spawn("send", async move {
            for i in 0..500 {
                let _ = tx.send(Cell::new(Vci(1), i, false, &[])).await;
                pandora_sim::delay(SimDuration::from_millis(1)).await;
            }
        });
        let n = Rc::new(StdCell::new(0u64));
        let nn = n.clone();
        sim.spawn("recv", async move {
            while rx.recv().await.is_ok() {
                nn.set(nn.get() + 1);
            }
        });
        sim.run_until(SimTime::from_secs(1));
        (trace.to_text(), n.get())
    }

    #[test]
    fn scripted_burst_applies_and_reverts_deterministically() {
        let (trace_a, delivered_a) = loss_burst_run(0);
        let (trace_b, delivered_b) = loss_burst_run(0);
        assert_eq!(trace_a, trace_b, "trace must be byte-identical");
        assert_eq!(delivered_a, delivered_b);
        // The burst window dropped roughly half of its ~200 cells.
        assert!(
            (350..=470).contains(&delivered_a),
            "delivered {delivered_a}"
        );
        assert!(trace_a.contains("apply cell-loss path=a-b prob=0.5000"));
        assert!(trace_a.contains("revert cell-loss path=a-b"));
        assert!(trace_a.contains("t=000100000000 apply"));
        assert!(trace_a.contains("t=000300000000 revert"));
    }

    #[test]
    fn unknown_targets_are_skipped_not_fatal() {
        let mut sim = Simulation::new();
        let targets = FaultTargets::new();
        let plan = FaultPlan::default().event(
            SimDuration::from_millis(1),
            None,
            FaultKind::LatencyStep {
                path: "nowhere".into(),
                extra: SimDuration::from_millis(5),
            },
        );
        let trace = install(&sim.spawner(), &plan, &targets);
        sim.run_until_idle();
        let text = trace.to_text();
        assert!(text.contains("skip latency-step path=nowhere"), "{text}");
    }

    #[test]
    fn crash_restart_pauses_every_box_task_family_and_replays() {
        fn run() -> (String, u64, u64) {
            let mut sim = Simulation::new();
            let agent = Rc::new(StdCell::new(0u64));
            let mixer = Rc::new(StdCell::new(0u64));
            let a = agent.clone();
            let m = mixer.clone();
            // Two task families of one box, named as the core names them.
            sim.spawn("node3:session-agent", async move {
                loop {
                    pandora_sim::delay(SimDuration::from_millis(1)).await;
                    a.set(a.get() + 1);
                }
            });
            sim.spawn("audio:node3:playback", async move {
                loop {
                    pandora_sim::delay(SimDuration::from_millis(1)).await;
                    m.set(m.get() + 1);
                }
            });
            let plan = FaultPlan::default().crash_restart(
                "node3",
                SimDuration::from_micros(10_500),
                SimDuration::from_millis(5),
            );
            let trace = install(&sim.spawner(), &plan, &FaultTargets::new());
            sim.run_until(SimTime::from_millis(30));
            (trace.to_text(), agent.get(), mixer.get())
        }
        let (text_a, agent_a, mixer_a) = run();
        let (text_b, agent_b, mixer_b) = run();
        assert_eq!(text_a, text_b, "trace must be byte-identical");
        assert_eq!((agent_a, mixer_a), (agent_b, mixer_b));
        // 10 ticks before the crash, none for 5 ms, then back on cadence.
        assert!((23..=25).contains(&agent_a), "agent ticks {agent_a}");
        assert!((23..=25).contains(&mixer_a), "mixer ticks {mixer_a}");
        assert!(
            text_a.contains("apply box-crash name=node3 tasks=2"),
            "{text_a}"
        );
        assert!(
            text_a.contains("apply box-restart name=node3 tasks=2"),
            "{text_a}"
        );
    }

    #[test]
    fn box_prefixes_do_not_cross_box_boundaries() {
        let mut sim = Simulation::new();
        let other = Rc::new(StdCell::new(0u64));
        let o = other.clone();
        sim.spawn("node1:session-agent", async move {
            loop {
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                o.set(o.get() + 1);
            }
        });
        let plan = FaultPlan::default().crash_restart(
            "node3",
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
        );
        let _trace = install(&sim.spawner(), &plan, &FaultTargets::new());
        sim.run_until(SimTime::from_millis(10));
        assert!(other.get() >= 8, "node1 must keep running: {}", other.get());
    }

    #[test]
    fn pause_event_stalls_and_resumes_named_tasks() {
        let mut sim = Simulation::new();
        let count = Rc::new(StdCell::new(0u64));
        let c = count.clone();
        sim.spawn("victim:tick", async move {
            loop {
                pandora_sim::delay(SimDuration::from_millis(1)).await;
                c.set(c.get() + 1);
            }
        });
        let plan = FaultPlan::default().event(
            SimDuration::from_micros(10_500),
            Some(SimDuration::from_millis(5)),
            FaultKind::PauseTasks {
                prefix: "victim:".into(),
            },
        );
        let trace = install(&sim.spawner(), &plan, &FaultTargets::new());
        sim.run_until(SimTime::from_millis(30));
        // 10 ticks before the pause, none for 5ms, then back on cadence.
        assert!((23..=25).contains(&count.get()), "count {}", count.get());
        let text = trace.to_text();
        assert!(
            text.contains("apply pause-tasks prefix=victim: tasks=1"),
            "{text}"
        );
        assert!(
            text.contains("revert pause-tasks prefix=victim: tasks=1"),
            "{text}"
        );
    }
}
