//! Experiments E1–E3, E13, E17: audio capacity, link capacity, latency.

use pandora::audio_board::{spawn_audio_playback, spawn_stream_generators, PlaybackConfig};
use pandora::pandora_box::{connect_pair, open_audio_shout};
use pandora::BoxConfig;
use pandora_atm::{segment_to_cells, HopConfig, Vci};
use pandora_audio::gen::Tone;
use pandora_buffers::Report;
use pandora_metrics::Table;
use pandora_segment::{wire, AudioSegment, Segment, SequenceNumber, StreamId, Timestamp};
use pandora_sim::{channel, link, unbounded, Cpu, LinkConfig, SimDuration, SimTime, Simulation};

/// Result of the E1 capacity sweep.
pub struct AudioCapacityResult {
    /// Largest stream count with no late mix ticks on the plain path.
    pub plain_capacity: usize,
    /// Largest stream count with no late ticks on the full path
    /// (jitter correction + muting + outgoing stream + interface).
    pub full_capacity: usize,
    /// Audio-transputer context switches per virtual second at the full
    /// capacity point (E17; the paper says "probably around 5kHz").
    pub ctx_switch_hz: f64,
    /// The printable table.
    pub table: Table,
}

fn capacity_run(streams: usize, full: bool, seconds: u64) -> (f64, f64) {
    let mut sim = Simulation::new();
    let cpu = Cpu::new("audio", SimDuration::from_nanos(700));
    let (tx, rx) = channel::<(StreamId, AudioSegment)>();
    let (rep_tx, _rep_rx) = unbounded::<Report>();
    let config = PlaybackConfig {
        charge_clawback: full,
        charge_muting: full,
        charge_interface: full,
        ..PlaybackConfig::default()
    };
    let sink = spawn_audio_playback(
        &sim.spawner(),
        "cap",
        config,
        None,
        cpu.clone(),
        rx,
        rep_tx,
        SimDuration::from_millis(500),
    );
    if full {
        // The §4.2 full case includes "an outgoing stream": a capture path
        // claiming the same CPU.
        let (mic_tx, mic_rx) = channel::<AudioSegment>();
        pandora::audio_board::spawn_audio_capture(
            &sim.spawner(),
            "cap",
            pandora::audio_board::CaptureConfig {
                signal: Box::new(Tone::new(440.0, 8_000.0)),
                blocks_per_segment: 2,
                drift: 0.0,
                outgoing_cost: SimDuration::from_micros(250),
                fifo_depth: 16,
            },
            None,
            cpu.clone(),
            mic_tx,
        );
        sim.spawn(
            "mic-sink",
            async move { while mic_rx.recv().await.is_ok() {} },
        );
    }
    spawn_stream_generators(&sim.spawner(), tx, streams, 2, SimTime::from_secs(seconds));
    sim.run_until(SimTime::from_secs(seconds));
    let ctx_hz = sim.context_switches() as f64 / seconds as f64;
    (sink.late_fraction(), ctx_hz)
}

/// E1 (+E17): "The T425 transputer used on the audio board can mix five
/// audio streams in the straightforward case, but only three if we have
/// jitter correction, muting, an outgoing stream and the interface code
/// running at the same time" (§4.2).
pub fn audio_capacity() -> AudioCapacityResult {
    let mut table = Table::new(
        "T1 (§4.2): audio mixing capacity — late mix-tick fraction vs streams",
        &["streams", "plain late%", "full late%"],
    );
    let mut plain_capacity = 0;
    let mut full_capacity = 0;
    let mut ctx_at_full = 0.0;
    for n in 1..=8 {
        let (plain, _) = capacity_run(n, false, 3);
        let (full, ctx) = capacity_run(n, true, 3);
        if plain < 0.01 {
            plain_capacity = n;
        }
        if full < 0.01 {
            full_capacity = n;
            ctx_at_full = ctx;
        }
        table.row_owned(vec![
            n.to_string(),
            format!("{:.1}", plain * 100.0),
            format!("{:.1}", full * 100.0),
        ]);
    }
    AudioCapacityResult {
        plain_capacity,
        full_capacity,
        ctx_switch_hz: ctx_at_full,
        table,
    }
}

/// Result of the E2 link-capacity sweep.
pub struct LinkCapacityResult {
    /// Largest stream count the 20 Mbit/s link carried without backlog.
    pub capacity: usize,
    /// The printable table.
    pub table: Table,
}

fn link_run(streams: usize, seconds: u64) -> f64 {
    let mut sim = Simulation::new();
    let (tx, rx) = link::<pandora_atm::Cell>(&sim.spawner(), LinkConfig::new("srv", 20_000_000));
    let delivered = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let d = delivered.clone();
    sim.spawn("sink", async move {
        while rx.recv().await.is_ok() {
            d.set(d.get() + 1);
        }
    });
    for k in 0..streams {
        let tx = tx.clone();
        sim.spawn(&format!("gen{k}"), async move {
            let seg = Segment::Audio(AudioSegment::from_blocks(
                SequenceNumber(0),
                Timestamp(0),
                vec![0u8; 32],
            ));
            let bytes = wire::encode(&seg);
            let mut n: u64 = 0;
            loop {
                n += 1;
                pandora_sim::delay_until(SimTime::from_nanos(n * 4_000_000)).await;
                for cell in segment_to_cells(Vci(k as u32), &bytes, 0) {
                    if tx.send(cell).await.is_err() {
                        return;
                    }
                }
            }
        });
    }
    sim.run_until(SimTime::from_secs(seconds));
    // Offered: 2 cells per 4ms per stream.
    let offered = (seconds * 1_000 / 4) * 2 * streams as u64;
    delivered.get() as f64 / offered as f64
}

/// E2: "The 20Mbit/s link to the server transputer is not a limiting
/// factor; it would be capable of taking 100 audio streams if we could
/// process them" (§4.2). With cell framing (68 B → 2 × 53 B cells) the
/// carrying capacity lands at ~94 streams.
pub fn link_capacity() -> LinkCapacityResult {
    let mut table = Table::new(
        "T2 (§4.2): 20 Mbit/s server-link audio capacity",
        &["streams", "carried fraction"],
    );
    let mut capacity = 0;
    for n in [25usize, 50, 75, 90, 94, 100, 110, 140] {
        let carried = link_run(n, 3);
        if carried > 0.995 {
            capacity = n;
        }
        table.row_owned(vec![n.to_string(), format!("{carried:.3}")]);
    }
    LinkCapacityResult { capacity, table }
}

/// Result of the E3/E13 latency experiment.
pub struct LatencyResult {
    /// One-way p50 latency (ns) for 1 / 2 / 12-block segments.
    pub p50_by_blocks: Vec<(usize, f64)>,
    /// Header overhead fraction by segment size.
    pub overhead_by_blocks: Vec<(usize, f64)>,
    /// The printable table.
    pub table: Table,
}

/// E3 + E13: one-way mic → speaker latency vs blocks-per-segment over a
/// quiet network. The paper's best trip was 8 ms, with "4ms of this …
/// buffering to the codec, and 2ms in the buffering from the codec"
/// (§4.2); §3.2 motivates 2-block segments as the latency/overhead
/// balance, 1 block for low latency, 12 for constrained receivers.
pub fn latency_vs_segment_size() -> LatencyResult {
    let mut table = Table::new(
        "T3/T13 (§4.2, §3.2): one-way latency and overhead vs blocks per segment",
        &[
            "blocks/seg",
            "p50 ms",
            "p99 ms",
            "min ms",
            "header overhead %",
        ],
    );
    let mut p50s = Vec::new();
    let mut overheads = Vec::new();
    for bps in [1usize, 2, 12] {
        let mut sim = Simulation::new();
        let mut cfg_a = BoxConfig::standard("a");
        cfg_a.blocks_per_segment = bps;
        let cfg_b = BoxConfig::standard("b");
        let pair = connect_pair(
            &sim.spawner(),
            cfg_a,
            cfg_b,
            &[HopConfig::clean(50_000_000)],
            11,
        );
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        sim.run_until(SimTime::from_secs(5));
        let mut lat = pair.b.speaker.latency_ns();
        let p50 = lat.percentile(50.0);
        let p99 = lat.percentile(99.0);
        let min = lat.min();
        let seg = AudioSegment::from_blocks(SequenceNumber(0), Timestamp(0), vec![0u8; bps * 16]);
        let overhead = seg.header_overhead();
        p50s.push((bps, p50));
        overheads.push((bps, overhead));
        table.row_owned(vec![
            bps.to_string(),
            format!("{:.2}", p50 / 1e6),
            format!("{:.2}", p99 / 1e6),
            format!("{:.2}", min / 1e6),
            format!("{:.1}", overhead * 100.0),
        ]);
    }
    LatencyResult {
        p50_by_blocks: p50s,
        overhead_by_blocks: overheads,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_capacities_match_paper() {
        let r = audio_capacity();
        assert_eq!(r.plain_capacity, 5, "\n{}", r.table);
        assert_eq!(r.full_capacity, 3, "\n{}", r.table);
        // "Probably around 5kHz" — same order of magnitude.
        assert!(
            (500.0..=50_000.0).contains(&r.ctx_switch_hz),
            "ctx {}Hz",
            r.ctx_switch_hz
        );
    }

    #[test]
    fn e2_link_carries_about_100_streams() {
        let r = link_capacity();
        assert!(
            (90..=110).contains(&r.capacity),
            "capacity {}\n{}",
            r.capacity,
            r.table
        );
    }

    #[test]
    fn e3_latency_single_digit_ms_and_monotonic() {
        let r = latency_vs_segment_size();
        let p50_1 = r.p50_by_blocks[0].1 / 1e6;
        let p50_2 = r.p50_by_blocks[1].1 / 1e6;
        let p50_12 = r.p50_by_blocks[2].1 / 1e6;
        // The paper's default (2 blocks) lands in the high-single-digit
        // millisecond range; 1-block is lower, 12-block much higher.
        assert!(p50_2 < 15.0, "2-block p50 {p50_2}ms\n{}", r.table);
        assert!(p50_1 < p50_2, "1-block {p50_1} !< 2-block {p50_2}");
        assert!(p50_12 > p50_2 + 8.0, "12-block {p50_12} vs {p50_2}");
        // Overhead falls with batching: 53% at 2 blocks, 16% at 12.
        assert!((r.overhead_by_blocks[1].1 - 36.0 / 68.0).abs() < 1e-9);
        assert!(r.overhead_by_blocks[2].1 < 0.17);
    }
}
