//! # pandora-bench — the experiment harness
//!
//! One function per paper result (see DESIGN.md §4 and EXPERIMENTS.md).
//! Every function runs a deterministic virtual-time simulation and returns
//! both a printable [`pandora_metrics::Table`] and the key numbers, which
//! the unit tests here pin against the paper's reported values.
//!
//! `cargo run --release -p pandora-bench --bin repro` regenerates all
//! tables; `cargo bench` measures host-side cost of the hot primitives
//! and of the simulations themselves.

pub mod ablations;
pub mod audio_exps;
pub mod clawback_exps;
pub mod media_exps;
pub mod policy_exps;
