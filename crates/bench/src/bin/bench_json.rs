//! `bench-json`: the tracked transport throughput suite.
//!
//! A hand-rolled wall-clock harness (the criterion shim prints rather
//! than records): each case is warmed up, then sampled as calibrated
//! batches; the median ns/op and derived ops/sec land in
//! `BENCH_transport.json` and `BENCH_session.json` at the current
//! directory — run it from the workspace root, as CI's `bench-smoke`
//! step does:
//!
//! ```text
//! cargo run --release -p pandora-bench --bin bench-json            # full
//! cargo run --release -p pandora-bench --bin bench-json -- --quick # smoke
//! ```
//!
//! The transport file also records the AAL legacy-vs-slab comparison the
//! zero-copy rework is tracked by; the session file tracks the control
//! plane's hot paths (signalling codec, admission charging, directory
//! lookup); the recovery file (`BENCH_recovery.json`) tracks the
//! failure-recovery runtime — wall-clock op rates of the lease and
//! adaptation machines plus a *virtual-time* crash scenario sweep
//! (detection latency and reconvergence time vs heartbeat interval),
//! which is deterministic and byte-stable across hosts. The binary
//! exits nonzero when any suite is malformed (too few cases, a tracked
//! case missing, or a crash scenario that failed to reconverge).

use std::cell::Cell as StdCell;
use std::process::ExitCode;
use std::rc::Rc;
use std::time::Instant;

use pandora_atm::{
    cells_gather, segment_to_burst, segment_to_cells, Cell, CellBurst, Reassembler,
    SlabReassembler, SwitchCore, Vci,
};
use pandora_audio::gen::Speech;
use pandora_audio::{mix_blocks, mix_blocks_scalar, Block};
use pandora_buffers::{ByteSlab, Pool};
use pandora_faults::{install, FaultPlan, FaultTargets};
use pandora_recover::{AdaptMachine, HealthConfig, Lease, LeaseConfig, MediaClass, WindowSample};
use pandora_segment::{
    wire, AudioSegment, PixelFormat, Segment, SequenceNumber, SlabSegment, Timestamp,
    VideoCompression, VideoHeader, VideoSegment,
};
use pandora_session::{
    AdmissionController, Capabilities, ControllerConfig, Directory, EndpointRecord, SessionMsg,
    Star, StarConfig, StreamClass,
};
use pandora_sim::{Receiver, SimDuration, SimTime, Simulation};
use pandora_video::dpcm::{
    compress_line, compress_slice, decompress_line, decompress_slice, LineMode,
};
use pandora_video::{capture_rect, CaptureConfig, FrameStore, RateFraction, Rect, TestPattern};

/// Per-sample budget and sample count for one measurement pass.
#[derive(Clone, Copy)]
struct Budget {
    sample_ns: u128,
    samples: usize,
}

impl Budget {
    fn full() -> Budget {
        Budget {
            sample_ns: 2_000_000,
            samples: 31,
        }
    }

    fn quick() -> Budget {
        Budget {
            sample_ns: 200_000,
            samples: 7,
        }
    }
}

struct Case {
    name: &'static str,
    median_ns: f64,
    ops_per_sec: f64,
}

/// Times `f` in calibrated batches and returns the median ns per call.
fn measure(name: &'static str, budget: Budget, mut f: impl FnMut()) -> Case {
    // Probe once to size the batch so each sample fills its budget.
    let t0 = Instant::now();
    f();
    let probe = t0.elapsed().as_nanos().max(1);
    let batch = (budget.sample_ns / probe).clamp(1, 1_000_000) as u32;
    // Warm-up: one unrecorded sample.
    for _ in 0..batch {
        f();
    }
    let mut per_op: Vec<f64> = Vec::with_capacity(budget.samples);
    for _ in 0..budget.samples {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        per_op.push(t0.elapsed().as_nanos() as f64 / f64::from(batch));
    }
    per_op.sort_by(|a, b| a.total_cmp(b));
    let median_ns = per_op[per_op.len() / 2];
    Case {
        name,
        median_ns,
        ops_per_sec: 1e9 / median_ns,
    }
}

/// Times two bodies as alternating samples in the same window, so slow
/// drift (frequency scaling, thermal state) hits both equally and the
/// ratio between them is meaningful. Returns the two cases in order.
fn measure_paired(
    names: (&'static str, &'static str),
    budget: Budget,
    mut f1: impl FnMut(),
    mut f2: impl FnMut(),
) -> (Case, Case) {
    let batch_for = |probe: u128| (budget.sample_ns / probe.max(1)).clamp(1, 1_000_000) as u32;
    let t0 = Instant::now();
    f1();
    let b1 = batch_for(t0.elapsed().as_nanos());
    let t0 = Instant::now();
    f2();
    let b2 = batch_for(t0.elapsed().as_nanos());
    // Warm-up: one unrecorded sample each.
    for _ in 0..b1 {
        f1();
    }
    for _ in 0..b2 {
        f2();
    }
    let mut per1: Vec<f64> = Vec::with_capacity(budget.samples);
    let mut per2: Vec<f64> = Vec::with_capacity(budget.samples);
    for _ in 0..budget.samples {
        let t0 = Instant::now();
        for _ in 0..b1 {
            f1();
        }
        per1.push(t0.elapsed().as_nanos() as f64 / f64::from(b1));
        let t0 = Instant::now();
        for _ in 0..b2 {
            f2();
        }
        per2.push(t0.elapsed().as_nanos() as f64 / f64::from(b2));
    }
    let case = |name, mut per: Vec<f64>| {
        per.sort_by(|a: &f64, b: &f64| a.total_cmp(b));
        let median_ns = per[per.len() / 2];
        Case {
            name,
            median_ns,
            ops_per_sec: 1e9 / median_ns,
        }
    };
    (case(names.0, per1), case(names.1, per2))
}

fn audio_segment() -> Segment {
    Segment::Audio(AudioSegment::from_blocks(
        SequenceNumber(7),
        Timestamp(1234),
        vec![0x55; 32],
    ))
}

fn video_segment() -> Segment {
    let header = VideoHeader {
        frame_number: 3,
        segments_in_frame: 4,
        segment_number: 1,
        x_offset: 16,
        y_offset: 16,
        pixel_format: PixelFormat::Mono8,
        compression: VideoCompression::Dpcm,
        compression_args: vec![2],
        width: 384,
        start_line: 32,
        lines: 32,
        data_length: 0,
    };
    Segment::Video(VideoSegment::new(
        SequenceNumber(11),
        Timestamp(5678),
        header,
        vec![0x3Cu8; 12_288],
    ))
}

/// One legacy AAL round trip: encode owned, segment, reassemble, decode.
fn legacy_round_trip(seg: &Segment, vci: Vci, r: &mut Reassembler, seq: &mut u32) {
    let bytes = wire::encode(seg);
    let cells = segment_to_cells(vci, &bytes, *seq);
    *seq = seq.wrapping_add(cells.len() as u32);
    let mut out = None;
    for cell in cells {
        out = r.push(cell).or(out);
    }
    let (_, frame) = out.expect("frame completes");
    std::hint::black_box(wire::decode(&frame).expect("decodes"));
}

/// One slab AAL round trip: header into scratch, gather cells straight
/// from the slab, reassemble into the slab, decode in place.
fn slab_round_trip(
    sseg: &SlabSegment,
    vci: Vci,
    r: &mut SlabReassembler,
    seq: &mut u32,
    scratch: &mut [u8],
) {
    wire::encode_header_into(&sseg.header, scratch);
    let cells = sseg
        .payload
        .copy_out_with(|p| cells_gather(vci, scratch, p, *seq));
    *seq = seq.wrapping_add(cells.len() as u32);
    let mut out = None;
    for cell in cells {
        out = r.push(cell).or(out);
    }
    let (_, frame) = out.expect("frame completes");
    std::hint::black_box(wire::decode_slab(&frame).expect("decodes"));
}

fn run_cases(budget: Budget) -> Vec<Case> {
    let mut cases = Vec::new();
    let audio = audio_segment();
    let video = video_segment();
    let wire_bytes = wire::encode(&audio);

    cases.push(measure("wire_encode_audio", budget, || {
        std::hint::black_box(wire::encode(&audio));
    }));
    cases.push(measure("wire_decode_view_audio", budget, || {
        std::hint::black_box(wire::decode_view(&wire_bytes).expect("decodes"));
    }));
    cases.push(measure("wire_decode_owned_audio", budget, || {
        std::hint::black_box(wire::decode(&wire_bytes).expect("decodes"));
    }));

    // The legacy-vs-slab comparisons are measured as alternating samples
    // in a shared window, so the recorded speedup is drift-free.
    for (seg, names) in [
        (&audio, ("aal_round_trip_legacy", "aal_round_trip_slab")),
        (
            &video,
            ("aal_round_trip_legacy_video", "aal_round_trip_slab_video"),
        ),
    ] {
        let mut lr = Reassembler::new();
        let mut lseq = 0u32;
        // `slab` stays bound here so the arena handle outlives `sseg`'s
        // region reference (drop order is reverse declaration order).
        let slab = ByteSlab::new(8, 64 * 1024);
        let sseg = SlabSegment::from_segment(seg, &slab).expect("fits");
        let mut sr = SlabReassembler::new(slab.clone());
        let mut sseq = 0u32;
        let mut scratch = vec![0u8; sseg.header.header_wire_bytes()];
        let (legacy, slab_case) = measure_paired(
            names,
            budget,
            || legacy_round_trip(seg, Vci(9), &mut lr, &mut lseq),
            || slab_round_trip(&sseg, Vci(9), &mut sr, &mut sseq, &mut scratch),
        );
        cases.push(legacy);
        cases.push(slab_case);
    }

    {
        let slab = ByteSlab::new(8, 64 * 1024);
        let payload = vec![0xA5u8; 1024];
        cases.push(measure("slab_alloc_free", budget, || {
            std::hint::black_box(slab.try_alloc_copy(&payload).expect("free region"));
        }));
    }
    {
        let slab = ByteSlab::new(8, 64 * 1024);
        let pool: Pool<SlabSegment> = Pool::new(64);
        let sseg = SlabSegment::from_segment(&audio, &slab).expect("fits");
        cases.push(measure("pool_alloc_release", budget, || {
            let d = pool.try_alloc(sseg.clone()).expect("free buffer");
            std::hint::black_box(pool.release(d));
        }));
    }
    cases
}

/// A scalar-vs-batched hot-path pair measured drift-free in one window,
/// with a committed speedup floor: the batched path must beat its scalar
/// oracle by at least `floor`x or the whole suite fails, with the same
/// teeth as the `aal_comparison` guard. `units_per_op` converts one
/// closure call into the tracked unit (cells, ticks, slices, segments).
struct Throughput {
    name: &'static str,
    scalar: Case,
    batched: Case,
    units_per_op: f64,
    unit: &'static str,
    floor: f64,
}

impl Throughput {
    fn speedup(&self) -> f64 {
        self.scalar.median_ns / self.batched.median_ns
    }

    fn units_per_sec(&self) -> f64 {
        self.units_per_op * 1e9 / self.batched.median_ns
    }
}

/// The batched hot paths introduced by the burst/vectorization rework,
/// each paired against the scalar path it replaces (the scalar paths stay
/// in-tree as conformance oracles — see `tests/batched_equivalence.rs`).
fn throughput_suites(budget: Budget) -> Vec<Throughput> {
    let mut suites = Vec::new();

    // Switch fabric: one op pushes 4 frames (24 cells each) across 4
    // routed VCIs through a 4-port core and drains the port queues.
    {
        let payload = vec![0x5Au8; 48 * 24];
        let build = || {
            let (core, rxs) = SwitchCore::new(4, 128);
            for v in 0..4u32 {
                core.route(Vci(100 + v), v as usize, Vci(200 + v));
            }
            (core, rxs)
        };
        let cells: Vec<Cell> = (0..4u32)
            .flat_map(|v| segment_to_cells(Vci(100 + v), &payload, 0))
            .collect();
        let bursts: Vec<CellBurst> = (0..4u32)
            .map(|v| segment_to_burst(Vci(100 + v), &payload, 0))
            .collect();
        let cells_per_op = cells.len() as f64;
        let (s_core, s_rx) = build();
        let (b_core, b_rx) = build();
        let drain = |rxs: &[Receiver<Cell>]| {
            for rx in rxs {
                while let Some(cell) = rx.try_recv() {
                    std::hint::black_box(cell);
                }
            }
        };
        let (scalar, batched) = measure_paired(
            ("switch_dispatch_per_cell", "switch_dispatch_burst"),
            budget,
            || {
                for c in &cells {
                    s_core.dispatch_cell(c.clone());
                }
                drain(&s_rx);
            },
            || {
                for b in &bursts {
                    b_core.dispatch_burst(b);
                }
                drain(&b_rx);
            },
        );
        suites.push(Throughput {
            name: "switch_burst_cells_per_sec",
            scalar,
            batched,
            units_per_op: cells_per_op,
            unit: "cells",
            floor: 1.2,
        });
    }

    // Mixer: one op is one 2 ms mix tick across 64 active streams —
    // flat-LUT decode + branch-free encode vs the reference codec.
    {
        let blocks: Vec<Block> = (0..64u64)
            .map(|s| {
                let mut rng = s.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let mut block = Block::SILENCE;
                for b in block.0.iter_mut() {
                    rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                    *b = (rng >> 32) as u8;
                }
                block
            })
            .collect();
        let (scalar, batched) = measure_paired(
            ("mix_64_reference", "mix_64_lut"),
            budget,
            || {
                std::hint::black_box(mix_blocks_scalar(blocks.iter()));
            },
            || {
                std::hint::black_box(mix_blocks(blocks.iter()));
            },
        );
        suites.push(Throughput {
            name: "mix_ticks_64_streams",
            scalar,
            batched,
            units_per_op: 1.0,
            unit: "ticks",
            floor: 1.3,
        });
    }

    // DPCM: one op compresses and decodes a 32-line x 384-pixel slice,
    // row-chunked vs one line (and one Vec) at a time. The LUT codec work
    // dominates at this width and is shared by both paths, so the slice
    // win (allocation elimination) is small; the floor is a no-regression
    // guard with the same 5% tolerance as the slab-video gate.
    {
        let width = 384usize;
        let lines = 32usize;
        let pixels = TestPattern::new(width as u32, lines as u32).frame(5);
        let (scalar, batched) = measure_paired(
            ("dpcm_per_line", "dpcm_slice"),
            budget,
            || {
                for row in 0..lines {
                    let line =
                        compress_line(&pixels[row * width..(row + 1) * width], LineMode::Dpcm);
                    std::hint::black_box(decompress_line(&line, width).expect("decodes"));
                }
            },
            || {
                let data = compress_slice(&pixels, width, LineMode::Dpcm);
                std::hint::black_box(decompress_slice(&data, width, lines).expect("decodes"));
            },
        );
        suites.push(Throughput {
            name: "dpcm_slices_per_sec",
            scalar,
            batched,
            units_per_op: 1.0,
            unit: "slices",
            floor: 0.95,
        });
    }

    // Full box: one op carries a captured video segment from wire encode
    // through the switch fabric and reassembly to decoded pixels. The
    // floor is a no-regression guard (the codec and fabric wins are
    // tracked by the dedicated pairs above; this row tracks that they
    // compose end to end).
    {
        let mut fs = FrameStore::new(384, 32);
        fs.write_frame(&TestPattern::new(384, 32).frame(3));
        let cfg = CaptureConfig {
            rect: Rect::new(0, 0, 384, 32),
            rate: RateFraction::FULL,
            lines_per_segment: 32,
            mode: LineMode::Dpcm,
        };
        let mut segs = capture_rect(&fs, &cfg, 0, SequenceNumber(0), Timestamp(0));
        let seg = Segment::Video(segs.remove(0));
        let bytes = wire::encode(&seg);
        let decode_frame = |frame: &[u8]| {
            let seg = wire::decode(frame).expect("decodes");
            let Segment::Video(v) = seg else {
                unreachable!("video segment round-trips as video")
            };
            std::hint::black_box(
                decompress_slice(&v.data, v.video.width as usize, v.video.lines as usize)
                    .expect("decodes"),
            );
        };
        let build = || {
            let (core, rxs) = SwitchCore::new(1, 512);
            core.route(Vci(5), 0, Vci(6));
            (core, rxs)
        };
        let (s_core, s_rx) = build();
        let (b_core, b_rx) = build();
        let mut s_reasm = Reassembler::new();
        let mut b_reasm = Reassembler::new();
        let mut s_seq = 0u32;
        let mut b_seq = 0u32;
        let (scalar, batched) = measure_paired(
            ("segment_box_per_cell", "segment_box_burst"),
            budget,
            || {
                let cells = segment_to_cells(Vci(5), &bytes, s_seq);
                s_seq = s_seq.wrapping_add(cells.len() as u32);
                for cell in cells {
                    s_core.dispatch_cell(cell);
                }
                let mut out = None;
                while let Some(cell) = s_rx[0].try_recv() {
                    out = s_reasm.push(cell).or(out);
                }
                let (_, frame) = out.expect("frame completes");
                decode_frame(&frame);
            },
            || {
                let burst = segment_to_burst(Vci(5), &bytes, b_seq);
                b_seq = b_seq.wrapping_add(burst.len() as u32);
                b_core.dispatch_burst(&burst);
                let cells: Vec<Cell> = std::iter::from_fn(|| b_rx[0].try_recv()).collect();
                let burst = CellBurst::from_cells(cells).expect("contiguous run");
                let (_, frame) = b_reasm.push_burst(burst).expect("frame completes");
                decode_frame(&frame);
            },
        );
        suites.push(Throughput {
            name: "segments_per_sec",
            scalar,
            batched,
            units_per_op: 1.0,
            unit: "segments",
            floor: 0.95,
        });
    }

    suites
}

/// The session control plane's hot paths, measured without a simulator:
/// the signalling codec both bare and through the segment wire format,
/// admission charge/refund cycles, and directory lookup.
fn session_cases(budget: Budget) -> Vec<Case> {
    let mut cases = Vec::new();
    let msg = SessionMsg::OpenSink {
        txn: 7,
        session: 3,
        class: StreamClass::Video { rate_permille: 500 },
        vci: Vci(0x1234),
    };
    cases.push(measure("session_msg_encode_decode", budget, || {
        let bytes = msg.encode();
        std::hint::black_box(SessionMsg::decode(&bytes).expect("decodes"));
    }));
    cases.push(measure("session_msg_segment_round_trip", budget, || {
        let seg = msg.to_segment(42);
        let bytes = wire::encode(&seg);
        let back = wire::decode(&bytes).expect("decodes");
        std::hint::black_box(SessionMsg::from_segment(&back).expect("is control"));
    }));
    {
        let mut adm = AdmissionController::new(Capabilities::standard());
        cases.push(measure("admission_admit_release_audio", budget, || {
            std::hint::black_box(adm.admit_sink(StreamClass::Audio));
            adm.release_sink(StreamClass::Audio);
        }));
    }
    {
        // A link budget sized so full-rate video must degrade: the cycle
        // measures the halving search plus the refund.
        let mut adm = AdmissionController::new(Capabilities {
            audio_sinks_max: 3,
            video_sinks_max: 2,
            link_cps: 700,
        });
        cases.push(measure("admission_degrade_release_video", budget, || {
            let granted = match adm.admit_sink(StreamClass::Video {
                rate_permille: 1000,
            }) {
                pandora_session::Decision::Admit => 1000,
                pandora_session::Decision::Degrade { rate_permille } => rate_permille,
                pandora_session::Decision::Reject(_) => unreachable!("budget fits the floor"),
            };
            adm.release_sink(StreamClass::Video {
                rate_permille: granted,
            });
        }));
    }
    {
        let mut dir = Directory::new();
        for i in 0..64usize {
            dir.register(EndpointRecord {
                name: format!("node{i}"),
                caps: Capabilities::standard(),
                port: i,
                control_vci: Vci(0x7F00 + i as u32),
                reply_vci: Vci(0x7E00 + i as u32),
            });
        }
        cases.push(measure("directory_find_of_64", budget, || {
            std::hint::black_box(dir.find("node63").expect("registered"));
        }));
    }
    cases
}

/// The failure-recovery state machines, measured without a simulator:
/// one full lease miss/renew transition pair and one bad+clean window
/// pair through the video adaptation machine.
fn recovery_cases(budget: Budget) -> Vec<Case> {
    let mut cases = Vec::new();
    {
        let mut lease = Lease::new(LeaseConfig::default());
        cases.push(measure("lease_miss_renew_cycle", budget, || {
            std::hint::black_box(lease.miss());
            std::hint::black_box(lease.renew());
        }));
    }
    {
        let mut machine = AdaptMachine::new(MediaClass::Video, HealthConfig::default());
        let bad = WindowSample {
            received: 900,
            gaps: 100,
            late: 0,
        };
        let clean = WindowSample {
            received: 1000,
            gaps: 0,
            late: 0,
        };
        cases.push(measure("adapt_observe_bad_clean", budget, || {
            std::hint::black_box(machine.observe(&bad));
            std::hint::black_box(machine.observe(&clean));
        }));
    }
    cases
}

/// One heartbeat-interval point of the crash scenario sweep. All times
/// are *virtual*: the same inputs yield byte-identical values on any
/// host, so the committed file doubles as a regression fixture.
struct RecoveryScenario {
    heartbeat_ms: u64,
    detect_sim_ms: f64,
    reconverge_sim_us: f64,
    probe_misses: u64,
    crashes: u64,
    rejoins: u64,
}

/// A six-box lease-guarded conference; node3 (both a listener of node0's
/// session and the source of its own) crashes at t=2 s and restarts at
/// t=6.5 s. Returns the controller's deterministic recovery measurements.
fn recovery_scenario(heartbeat_ms: u64) -> RecoveryScenario {
    let mut sim = Simulation::new();
    let lease = LeaseConfig {
        interval: SimDuration::from_millis(heartbeat_ms),
        backoff_cap: SimDuration::from_millis(heartbeat_ms * 8),
        ..LeaseConfig::default()
    };
    let star = Star::build(
        &sim.spawner(),
        6,
        StarConfig {
            seed: 71,
            controller: ControllerConfig {
                lease: Some(lease),
                ..ControllerConfig::default()
            },
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let mic3 = star.nodes[3]
        .boxy
        .start_audio_source(Box::new(Speech::new(2)));
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let controller = star.controller.clone();
    let done = Rc::new(StdCell::new(false));
    let d = done.clone();
    sim.spawn("driver", async move {
        let s0 = controller
            .open(endpoints[0], mic0, StreamClass::Audio)
            .expect("open s0");
        let s3 = controller
            .open(endpoints[3], mic3, StreamClass::Audio)
            .expect("open s3");
        for dst in [1, 2, 3] {
            controller
                .add_listener(s0, endpoints[dst])
                .await
                .expect("admit listener");
        }
        controller
            .add_listener(s3, endpoints[4])
            .await
            .expect("admit s3 listener");
        d.set(true);
    });
    let plan = FaultPlan::default().crash_restart(
        "node3",
        SimDuration::from_secs(2),
        SimDuration::from_millis(4_500),
    );
    let _trace = install(&sim.spawner(), &plan, &FaultTargets::new());
    sim.run_until(SimTime::from_secs(12));
    assert!(done.get(), "scenario driver did not finish");
    RecoveryScenario {
        heartbeat_ms,
        detect_sim_ms: star.controller.detect_latency_mean_ns() / 1e6,
        reconverge_sim_us: star.controller.reconverge_mean_ns() / 1e3,
        probe_misses: star.controller.probe_misses(),
        crashes: star.controller.crashes(),
        rejoins: star.controller.rejoins(),
    }
}

/// One shard count's measurement of the 1,000-box broadcast soak: the
/// executor-level events/sec figure the sharded runtime is tracked by.
struct SimScalingPoint {
    shards: usize,
    events: u64,
    wall_ms: f64,
    events_per_sec: f64,
}

/// Runs the 1,000-box broadcast soak at shard counts {1, 2, 4, 8},
/// asserting byte-identical traces along the way (a diverging trace is
/// a bench failure, not just a slow run). Returns `None` when the soak
/// fails to complete or diverges.
fn sim_scaling_points() -> Option<Vec<SimScalingPoint>> {
    use pandora_shard::broadcast::{build, BroadcastConfig};
    let cfg = BroadcastConfig {
        boxes: 1_000,
        fanout: 4,
        segment_interval: SimDuration::from_millis(5),
        segments: 50,
        hop_latency: SimDuration::from_micros(200),
        relay_cost: SimDuration::from_micros(40),
    };
    let deadline = SimTime::from_millis(300);
    let mut baseline: Option<Vec<String>> = None;
    let mut points = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let report = build(&cfg, shards).run(deadline);
        let wall = t0.elapsed();
        let lines = report.merged_lines();
        match &baseline {
            None => {
                if !lines.iter().skip(1).all(|l| l.contains("recv=50")) {
                    eprintln!("bench-json: broadcast soak did not complete at 1 shard");
                    return None;
                }
                baseline = Some(lines);
            }
            Some(b) => {
                if lines != *b {
                    eprintln!("bench-json: broadcast soak diverged at {shards} shards");
                    return None;
                }
            }
        }
        let events = report.events();
        let wall_ms = wall.as_secs_f64() * 1e3;
        points.push(SimScalingPoint {
            shards,
            events,
            wall_ms,
            events_per_sec: events as f64 / wall.as_secs_f64(),
        });
    }
    Some(points)
}

/// The overlay broadcast soak's measurements: virtual-time acceptance
/// floors (tree depth, zero loss on survivors, repair gap within the
/// playout budget) plus the host-dependent wall-clock build+run rate,
/// replayed across shard counts with byte-identical traces.
struct OverlaySoak {
    members: usize,
    trees: usize,
    degree: usize,
    depth: u32,
    depth_bound: u32,
    relay_tx_cps: u64,
    survivors: u64,
    crashed: u64,
    delivered: u64,
    lost_alive: u64,
    late_alive: u64,
    p3_drops: u64,
    p8_skips: u64,
    hub_deaths: u64,
    hub_grafts: u64,
    unrepairable: u64,
    stripe_gap_max_us: u64,
    gap_max_us: u64,
    playout_us: u64,
    hops: u64,
    hop_p50_us: u64,
    hop_p95_us: u64,
    hop_p99_us: u64,
    hop_max_us: u64,
    /// (shards, wall_ms) per run; traces were byte-identical across all.
    scaling: Vec<(usize, f64)>,
}

/// Runs the striped-tree overlay broadcast soak — 1,024 members in full
/// mode, 256 in quick — with a mid-broadcast crash of the busiest
/// interior relay, at several shard counts. Returns `None` (a bench
/// failure) when any acceptance floor is missed or traces diverge.
fn overlay_soak(quick: bool) -> Option<OverlaySoak> {
    use pandora_overlay::{
        build_overlay_broadcast, plan_for, CrashPlan, OverlayConfig, OverlaySummary,
    };
    let mut cfg = OverlayConfig {
        viewers: if quick { 255 } else { 1_023 },
        trees: 4,
        degree: 8,
        seed: 42,
        segments: 100,
        segment_interval: SimDuration::from_millis(4),
        payload_bytes: 1_408,
        // 2 x degree stripe copies of uplink headroom, so a backup that
        // adopts a dead relay's children still serializes in time.
        uplink_cps: 60_000,
        source_uplink_cps: 120_000,
        ..OverlayConfig::default()
    };
    let plan = match plan_for(&cfg) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bench-json: overlay plan failed: {e}");
            return None;
        }
    };
    let victim = (1..plan.members()).max_by_key(|&v| plan.fanout(v))?;
    if plan.fanout(victim) == 0 {
        eprintln!("bench-json: overlay plan has no interior relays");
        return None;
    }
    cfg.crash = Some(CrashPlan {
        member: victim,
        at: SimDuration::from_millis(150),
    });
    let deadline = SimTime::from_nanos(
        cfg.segment_interval.as_nanos() * u64::from(cfg.segments)
            + SimDuration::from_millis(200).as_nanos(),
    );
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 4, 8] };
    let mut baseline: Option<Vec<String>> = None;
    let mut relay_tx_cps = 0;
    let mut scaling = Vec::new();
    for &shards in shard_counts {
        let t0 = Instant::now();
        let built = match build_overlay_broadcast(&cfg, shards) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("bench-json: overlay build failed at {shards} shards: {e}");
                return None;
            }
        };
        relay_tx_cps = built.relay_tx_cps;
        let lines = built.cluster.run(deadline).merged_lines();
        scaling.push((shards, t0.elapsed().as_secs_f64() * 1e3));
        match &baseline {
            None => baseline = Some(lines),
            Some(b) if lines != *b => {
                eprintln!("bench-json: overlay soak diverged at {shards} shards");
                return None;
            }
            Some(_) => {}
        }
    }
    let s = OverlaySummary::parse(baseline.as_deref()?);
    let playout_us = cfg.playout.as_nanos() / 1_000;
    let floors = [
        (
            plan.max_depth_overall() <= plan.depth_bound(),
            "depth exceeds ceil(log_d n)",
        ),
        (s.crashed == 1 && s.hub_deaths == 1, "crash went undetected"),
        (
            s.hub_grafts >= 1 && s.hub_unrepairable == 0,
            "repair incomplete",
        ),
        (s.lost_alive == 0, "survivors lost slices"),
        (s.late_alive == 0, "survivors saw late slices"),
        (
            s.stripe_gap_max_us_alive <= playout_us,
            "repair gap exceeds playout",
        ),
    ];
    for (ok, what) in floors {
        if !ok {
            eprintln!("bench-json: overlay soak floor missed: {what}");
            return None;
        }
    }
    Some(OverlaySoak {
        members: plan.members(),
        trees: cfg.trees,
        degree: cfg.degree,
        depth: plan.max_depth_overall(),
        depth_bound: plan.depth_bound(),
        relay_tx_cps,
        survivors: s.viewers - s.crashed,
        crashed: s.crashed,
        delivered: s.delivered,
        lost_alive: s.lost_alive,
        late_alive: s.late_alive,
        p3_drops: s.p3_drops,
        p8_skips: s.p8_skips,
        hub_deaths: s.hub_deaths,
        hub_grafts: s.hub_grafts,
        unrepairable: s.hub_unrepairable,
        stripe_gap_max_us: s.stripe_gap_max_us_alive,
        gap_max_us: s.gap_max_us_alive,
        playout_us,
        hops: s.hop_count(),
        hop_p50_us: s.hop_percentile_us(500),
        hop_p95_us: s.hop_percentile_us(950),
        hop_p99_us: s.hop_percentile_us(990),
        hop_max_us: s.hop_max_us,
        scaling,
    })
}

fn render_overlay_json(soak: &OverlaySoak, mode: &str) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"overlay\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(
        "  \"note\": \"striped multi-tree broadcast soak with a mid-run interior-relay \
         crash. All soak fields are virtual-time and byte-stable across hosts and shard \
         counts; only scaling.wall_ms is host-dependent. The floors block records the \
         acceptance gates the binary enforces — a missed floor fails the whole run.\",\n",
    );
    out.push_str(&format!(
        "  \"soak\": {{\"members\": {}, \"trees\": {}, \"degree\": {}, \"depth\": {}, \
         \"depth_bound\": {}, \"relay_tx_cps\": {}, \"survivors\": {}, \"crashed\": {}, \
         \"delivered\": {}, \"lost_alive\": {}, \"late_alive\": {}, \"p3_drops\": {}, \
         \"p8_skips\": {}, \"hub_deaths\": {}, \"hub_grafts\": {}, \"unrepairable\": {}, \
         \"stripe_gap_max_us\": {}, \"gap_max_us\": {}, \"playout_us\": {}}},\n",
        soak.members,
        soak.trees,
        soak.degree,
        soak.depth,
        soak.depth_bound,
        soak.relay_tx_cps,
        soak.survivors,
        soak.crashed,
        soak.delivered,
        soak.lost_alive,
        soak.late_alive,
        soak.p3_drops,
        soak.p8_skips,
        soak.hub_deaths,
        soak.hub_grafts,
        soak.unrepairable,
        soak.stripe_gap_max_us,
        soak.gap_max_us,
        soak.playout_us,
    ));
    out.push_str(&format!(
        "  \"hop_latency_us\": {{\"hops\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}},\n",
        soak.hops, soak.hop_p50_us, soak.hop_p95_us, soak.hop_p99_us, soak.hop_max_us,
    ));
    out.push_str(
        "  \"floors\": {\"depth_within_bound\": true, \"zero_lost_alive\": true, \
         \"zero_late_alive\": true, \"repair_gap_within_playout\": true, \
         \"traces_identical_across_shards\": true},\n",
    );
    out.push_str("  \"scaling\": [\n");
    for (i, (shards, wall_ms)) in soak.scaling.iter().enumerate() {
        let sep = if i + 1 == soak.scaling.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"shards\": {shards}, \"wall_ms\": {wall_ms:.1}}}{sep}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_sim_json(points: &[SimScalingPoint], mode: &str) -> Option<String> {
    let base_wall = points.first().filter(|p| p.shards == 1)?.wall_ms;
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"sim\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    out.push_str(
        "  \"note\": \"1,000-box broadcast soak; traces byte-identical at every shard \
         count. speedup_vs_1 is wall-clock and only meaningful when host_cores >= shards \
         — on fewer cores the worker threads time-slice one CPU and the honest figure \
         is ~1x minus coordination overhead. Rows with advisory=true ran with more \
         shards than host cores; guards and comparisons must skip them.\",\n",
    );
    out.push_str("  \"scaling\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"shards\": {}, \"events\": {}, \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \"speedup_vs_1\": {:.2}, \"advisory\": {}}}{sep}\n",
            p.shards,
            p.events,
            p.wall_ms,
            p.events_per_sec,
            base_wall / p.wall_ms,
            host_cores < p.shards
        ));
    }
    out.push_str("  ]\n}\n");
    Some(out)
}

fn render_recovery_json(
    cases: &[Case],
    scenarios: &[RecoveryScenario],
    mode: &str,
) -> Option<String> {
    if cases.len() < 2 || median_of(cases, "lease_miss_renew_cycle").is_none() {
        eprintln!(
            "bench-json: recovery suite malformed ({} cases)",
            cases.len()
        );
        return None;
    }
    if scenarios.len() < 2
        || scenarios
            .iter()
            .any(|s| s.crashes != 1 || s.rejoins != 1 || s.detect_sim_ms <= 0.0)
    {
        eprintln!("bench-json: recovery scenario sweep failed to reconverge");
        return None;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"recovery\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"ops_per_sec\": {:.0}}}{sep}\n",
            c.name, c.median_ns, c.ops_per_sec
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"crash_scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let sep = if i + 1 == scenarios.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"heartbeat_ms\": {}, \"detect_sim_ms\": {:.3}, \"reconverge_sim_us\": {:.3}, \"probe_misses\": {}, \"crashes\": {}, \"rejoins\": {}}}{sep}\n",
            s.heartbeat_ms, s.detect_sim_ms, s.reconverge_sim_us, s.probe_misses, s.crashes, s.rejoins
        ));
    }
    out.push_str("  ]\n}\n");
    Some(out)
}

fn render_session_json(cases: &[Case], mode: &str) -> Option<String> {
    if cases.len() < 3 || median_of(cases, "session_msg_encode_decode").is_none() {
        eprintln!(
            "bench-json: session suite malformed ({} cases)",
            cases.len()
        );
        return None;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"session\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"ops_per_sec\": {:.0}}}{sep}\n",
            c.name, c.median_ns, c.ops_per_sec
        ));
    }
    out.push_str("  ]\n}\n");
    Some(out)
}

fn median_of(cases: &[Case], name: &str) -> Option<f64> {
    cases.iter().find(|c| c.name == name).map(|c| c.median_ns)
}

fn render_json(cases: &[Case], throughput: &[Throughput], mode: &str) -> Option<String> {
    if cases.len() < 4 {
        eprintln!("bench-json: only {} cases, need at least 4", cases.len());
        return None;
    }
    if throughput.len() < 4 {
        eprintln!(
            "bench-json: only {} throughput pairs, need at least 4",
            throughput.len()
        );
        return None;
    }
    // Regression guards: each batched hot path carries a committed floor
    // against its scalar oracle. The pairs are drift-free (alternating
    // samples in one window), so dropping below the floor means the
    // batched path genuinely lost its edge, not that the host was busy.
    for t in throughput {
        if t.speedup() < t.floor {
            eprintln!(
                "bench-json: {} below its committed floor: {:.2}x < {:.2}x \
                 (scalar {:.1} ns vs batched {:.1} ns)",
                t.name,
                t.speedup(),
                t.floor,
                t.scalar.median_ns,
                t.batched.median_ns
            );
            return None;
        }
    }
    let legacy = median_of(cases, "aal_round_trip_legacy")?;
    let slab = median_of(cases, "aal_round_trip_slab")?;
    let legacy_video = median_of(cases, "aal_round_trip_legacy_video")?;
    let slab_video = median_of(cases, "aal_round_trip_slab_video")?;
    // Regression guard: the zero-copy path must not lose to the legacy
    // path it replaces. The comparison is drift-free (alternating
    // samples in one window), so a small tolerance absorbs residual
    // scheduler noise while still failing a real regression like the
    // per-append arena borrow this gate was introduced for.
    if slab_video > legacy_video * 1.05 {
        eprintln!(
            "bench-json: slab video round trip regressed vs legacy \
             ({slab_video:.1} ns > {legacy_video:.1} ns + 5%)"
        );
        return None;
    }
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"transport\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let sep = if i + 1 == cases.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"ops_per_sec\": {:.0}}}{sep}\n",
            c.name, c.median_ns, c.ops_per_sec
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"aal_comparison\": {{\"legacy_ns\": {:.1}, \"slab_ns\": {:.1}, \"speedup\": {:.2}, \"improved\": {}, \"video_legacy_ns\": {:.1}, \"video_slab_ns\": {:.1}, \"video_speedup\": {:.2}, \"video_improved\": {}}},\n",
        legacy,
        slab,
        legacy / slab,
        slab < legacy,
        legacy_video,
        slab_video,
        legacy_video / slab_video,
        slab_video < legacy_video
    ));
    out.push_str("  \"throughput\": [\n");
    for (i, t) in throughput.iter().enumerate() {
        let sep = if i + 1 == throughput.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.2}, \"floor\": {:.2}, \"unit\": \"{}\", \"units_per_sec\": {:.0}, \"improved\": {}}}{sep}\n",
            t.name,
            t.scalar.median_ns,
            t.batched.median_ns,
            t.speedup(),
            t.floor,
            t.unit,
            t.units_per_sec(),
            t.batched.median_ns < t.scalar.median_ns
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    Some(out)
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (budget, mode) = if quick {
        (Budget::quick(), "quick")
    } else {
        (Budget::full(), "full")
    };
    let cases = run_cases(budget);
    for c in &cases {
        println!(
            "{:<28} {:>12.1} ns/op {:>14.0} ops/s",
            c.name, c.median_ns, c.ops_per_sec
        );
    }
    let throughput = throughput_suites(budget);
    for t in &throughput {
        println!(
            "{:<28} scalar {:>9.1} ns -> batched {:>9.1} ns ({:.2}x, floor {:.2}x, {:.0} {}/s)",
            t.name,
            t.scalar.median_ns,
            t.batched.median_ns,
            t.speedup(),
            t.floor,
            t.units_per_sec(),
            t.unit
        );
    }
    let Some(json) = render_json(&cases, &throughput, mode) else {
        eprintln!("bench-json: suite malformed, not writing BENCH_transport.json");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::write("BENCH_transport.json", &json) {
        eprintln!("bench-json: cannot write BENCH_transport.json: {e}");
        return ExitCode::FAILURE;
    }
    let session = session_cases(budget);
    for c in &session {
        println!(
            "{:<28} {:>12.1} ns/op {:>14.0} ops/s",
            c.name, c.median_ns, c.ops_per_sec
        );
    }
    let Some(json) = render_session_json(&session, mode) else {
        eprintln!("bench-json: session suite malformed, not writing BENCH_session.json");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::write("BENCH_session.json", &json) {
        eprintln!("bench-json: cannot write BENCH_session.json: {e}");
        return ExitCode::FAILURE;
    }
    let recovery = recovery_cases(budget);
    for c in &recovery {
        println!(
            "{:<28} {:>12.1} ns/op {:>14.0} ops/s",
            c.name, c.median_ns, c.ops_per_sec
        );
    }
    // The sweep is virtual-time, so quick and full modes measure the
    // same values; only the wall-clock cases above differ by budget.
    let scenarios: Vec<RecoveryScenario> =
        [50, 100, 200].map(recovery_scenario).into_iter().collect();
    for s in &scenarios {
        println!(
            "crash @ heartbeat {:>4} ms: detected in {:.1} ms, reconverged in {:.1} us ({} probe misses)",
            s.heartbeat_ms, s.detect_sim_ms, s.reconverge_sim_us, s.probe_misses
        );
    }
    let Some(json) = render_recovery_json(&recovery, &scenarios, mode) else {
        eprintln!("bench-json: recovery suite malformed, not writing BENCH_recovery.json");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::write("BENCH_recovery.json", &json) {
        eprintln!("bench-json: cannot write BENCH_recovery.json: {e}");
        return ExitCode::FAILURE;
    }
    // The sharded-executor scaling curve is virtual-workload/wall-clock:
    // the trace equality checks inside are deterministic, the rates are
    // host-dependent.
    let Some(points) = sim_scaling_points() else {
        eprintln!("bench-json: sim suite failed, not writing BENCH_sim.json");
        return ExitCode::FAILURE;
    };
    for p in &points {
        println!(
            "broadcast soak @ {} shard(s): {} events in {:.1} ms ({:.0} events/s)",
            p.shards, p.events, p.wall_ms, p.events_per_sec
        );
    }
    let Some(json) = render_sim_json(&points, mode) else {
        eprintln!("bench-json: sim suite malformed, not writing BENCH_sim.json");
        return ExitCode::FAILURE;
    };
    if let Err(e) = std::fs::write("BENCH_sim.json", &json) {
        eprintln!("bench-json: cannot write BENCH_sim.json: {e}");
        return ExitCode::FAILURE;
    }
    // The overlay broadcast soak: virtual-time acceptance floors plus
    // the wall-clock build+run rate per shard count.
    let Some(soak) = overlay_soak(quick) else {
        eprintln!("bench-json: overlay soak failed, not writing BENCH_overlay.json");
        return ExitCode::FAILURE;
    };
    println!(
        "overlay soak: {} members, depth {}/{}, {} survivors at 0 lost / 0 late, \
         repair gap {} us (playout {} us), hop p50<={} p95<={} p99<={} max={} us",
        soak.members,
        soak.depth,
        soak.depth_bound,
        soak.survivors,
        soak.stripe_gap_max_us,
        soak.playout_us,
        soak.hop_p50_us,
        soak.hop_p95_us,
        soak.hop_p99_us,
        soak.hop_max_us,
    );
    for (shards, wall_ms) in &soak.scaling {
        println!("overlay soak @ {shards} shard(s): {wall_ms:.1} ms wall");
    }
    let json = render_overlay_json(&soak, mode);
    if let Err(e) = std::fs::write("BENCH_overlay.json", &json) {
        eprintln!("bench-json: cannot write BENCH_overlay.json: {e}");
        return ExitCode::FAILURE;
    }
    let legacy = median_of(&cases, "aal_round_trip_legacy").unwrap_or(0.0);
    let slab = median_of(&cases, "aal_round_trip_slab").unwrap_or(0.0);
    println!(
        "aal audio round trip: legacy {legacy:.1} ns -> slab {slab:.1} ns ({:.2}x)",
        legacy / slab
    );
    println!(
        "wrote BENCH_transport.json, BENCH_session.json, BENCH_recovery.json, BENCH_sim.json \
         and BENCH_overlay.json ({mode} mode)"
    );
    ExitCode::SUCCESS
}
