//! Regenerates every paper table/figure reproduction in one run.
//!
//! ```text
//! cargo run --release -p pandora-bench --bin repro
//! ```
//!
//! Each section cites the paper passage it reproduces; EXPERIMENTS.md
//! archives a reference run with commentary.

use pandora_bench::{ablations, audio_exps, clawback_exps, media_exps, policy_exps};

fn main() {
    let t0 = std::time::Instant::now();
    println!("Pandora reproduction — regenerating all paper results");
    println!("(Jones & Hopper, \"Handling Audio and Video Streams in a");
    println!(" Distributed Environment\", SOSP 1993)");
    println!();

    let e1 = audio_exps::audio_capacity();
    println!("{}", e1.table);
    println!(
        "  -> capacities: plain = {} streams (paper: 5), full = {} (paper: 3);",
        e1.plain_capacity, e1.full_capacity
    );
    println!(
        "     context switching at full load ≈ {:.1} kHz (paper: \"probably around 5kHz\")",
        e1.ctx_switch_hz / 1e3
    );
    println!();

    let e2 = audio_exps::link_capacity();
    println!("{}", e2.table);
    println!(
        "  -> measured capacity ≈ {} streams (paper: \"100 audio streams\")",
        e2.capacity
    );
    println!();

    let e3 = audio_exps::latency_vs_segment_size();
    println!("{}", e3.table);
    println!("  -> paper: best one-way trip 8 ms; 2-block segments are the default");
    println!();

    let e4 = policy_exps::video_jitter();
    println!("{}", e4.table);
    println!("  -> paper: non-interleaved video introduces \"up to 20ms of jitter\"");
    println!();

    let e5 = clawback_exps::clawback_adaptation();
    println!("{}", e5.table);
    println!(
        "  -> mean delay during jitter {:.1} ms; settled to {:.1} ms in {:.0} s (paper: ~1 minute)",
        e5.delay_during_jitter / 1e6,
        e5.final_delay / 1e6,
        e5.adaptation_seconds
    );
    println!();

    let e6 = clawback_exps::multirate_clawback();
    println!("{}", e6.table);
    println!();

    let e7 = clawback_exps::clock_drift_tolerance();
    println!("{}", e7.table);
    println!();

    let e8 = media_exps::muting_function();
    println!("{}", e8.table);
    println!(
        "  -> reaction {} blocks; deep {} blocks, half {} blocks (paper: 22 ms each)",
        e8.reaction_blocks, e8.deep_blocks, e8.half_blocks
    );
    println!();

    let e9 = media_exps::loss_concealment();
    println!("{}", e9.table);
    println!("  -> paper ordering: sample drops < block drops; replay-last preferred");
    println!();

    let e10 = policy_exps::overload_policy();
    println!("{}", e10.table);
    println!();

    let e11 = policy_exps::command_latency();
    println!("{}", e11.table);
    println!();

    let e12 = policy_exps::split_independence();
    println!("{}", e12.table);
    println!();

    let e14 = media_exps::resegmentation();
    println!("{}", e14.table);
    println!("  -> lossless: {}", e14.lossless);
    println!();

    let e15 = clawback_exps::superjanet();
    println!("{}", e15.table);
    println!();

    let e16 = media_exps::decoupling_mechanics();
    println!("{}", e16.table);
    println!();

    let a1 = ablations::clawback_target_ablation();
    println!("{}", a1.table);
    println!();

    let a2 = ablations::audio_net_buffer_ablation();
    println!("{}", a2.table);
    println!();

    println!(
        "All tables regenerated in {:.1}s of host time.",
        t0.elapsed().as_secs_f64()
    );
}
