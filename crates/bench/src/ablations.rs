//! Ablations of the design choices DESIGN.md calls out: parameters the
//! paper fixed by judgement, swept to show the trade-off each sits on.

use pandora::pandora_box::{connect_pair, open_audio_shout, open_video_stream};
use pandora::BoxConfig;
use pandora_atm::HopConfig;
use pandora_audio::gen::Tone;
use pandora_buffers::{Clawback, ClawbackConfig};
use pandora_metrics::Table;
use pandora_sim::{SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

/// Result of the clawback lower-target ablation.
pub struct TargetAblationResult {
    /// `(target blocks, silence fraction, mean standing delay ns)` rows.
    pub rows: Vec<(usize, f64, f64)>,
    /// The printable table.
    pub table: Table,
}

/// A1: the clawback lower target ("our default is 4ms" = 2 blocks,
/// §3.7.2) trades residual silence insertions against standing delay. A
/// 20 ms jitter spike inflates the buffer; afterwards the clawback decays
/// it until the *target* stops it — too low a target claws into the
/// remaining jitter headroom (audible gaps), too high wastes latency.
pub fn clawback_target_ablation() -> TargetAblationResult {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "A1 (§3.7.2): clawback lower target after a jitter spike (6ms residual bunching, 180s)",
        &[
            "target (ms)",
            "silence ticks per min (post-spike)",
            "mean delay (ms, last 60s)",
        ],
    );
    for target in [0usize, 1, 2, 4, 8] {
        let mut buf = Clawback::new(ClawbackConfig {
            lower_target_blocks: target,
            // A faster rate so the 3-minute run reaches steady state.
            count_threshold: 512,
            ..ClawbackConfig::default()
        });
        let bunch = |t: u64, period: u64| (period - (t % period)) % period;
        let block = 2_000_000u64;
        let end = 180u64 * 1_000_000_000;
        let spike_end = 20u64 * 1_000_000_000;
        let mut arrivals: Vec<u64> = Vec::new();
        let mut k = 0u64;
        loop {
            let base = k * block;
            if base > end {
                break;
            }
            // 20ms bunching during the spike, 6ms afterwards.
            let period = if base < spike_end {
                20_000_000
            } else {
                6_000_000
            };
            arrivals.push(base + bunch(base, period));
            k += 1;
        }
        arrivals.sort_unstable();
        let mut ai = 0usize;
        let mut t = block;
        let mut delay_sum = 0f64;
        let mut samples = 0u64;
        let mut silences_post = 0u64;
        let mut last_empty = 0u64;
        while t <= end {
            while ai < arrivals.len() && arrivals[ai] <= t {
                buf.arrival(arrivals[ai]);
                ai += 1;
            }
            let before = buf.stats().empty_ticks;
            buf.tick();
            if t > spike_end + 60_000_000_000 && buf.stats().empty_ticks > before {
                silences_post += 1;
            }
            if t > end - 60_000_000_000 {
                delay_sum += buf.delay_nanos() as f64;
                samples += 1;
            }
            last_empty = buf.stats().empty_ticks;
            t += block;
        }
        let _ = last_empty;
        // The post-spike window is 100s long.
        let silence_per_min = silences_post as f64 * 60.0 / 100.0;
        let mean_delay = delay_sum / samples.max(1) as f64;
        rows.push((target, silence_per_min, mean_delay));
        table.row_owned(vec![
            format!("{}", target * 2),
            format!("{silence_per_min:.1}"),
            format!("{:.1}", mean_delay / 1e6),
        ]);
    }
    TargetAblationResult { rows, table }
}

/// Result of the audio network buffer ablation.
pub struct AudioBufferAblationResult {
    /// `(buffer segments, audio p99 latency ns, audio drops)` rows.
    pub rows: Vec<(usize, f64, u64)>,
    /// The printable table.
    pub table: Table,
}

/// A2: the figure 3.7 audio-side network decoupling buffer. "We limit the
/// size of this buffer so that the video delays do not become aggravating
/// to the user, and buffer the audio separately so that it can be given
/// priority." Sweeping its size under heavy video load shows the choice:
/// big buffers add queueing latency under bursts, tiny ones drop audio.
pub fn audio_net_buffer_ablation() -> AudioBufferAblationResult {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "A2 (fig 3.7): audio network-buffer size under heavy video (10 Mbit/s ring, 8 s)",
        &[
            "buffer (segments)",
            "audio p99 latency (ms)",
            "audio drops at switch",
        ],
    );
    for cap in [1usize, 2, 8, 32] {
        let mut sim = Simulation::new();
        let mut cfg_a = BoxConfig::standard("a");
        cfg_a.audio_net_buffer = cap;
        let pair = connect_pair(
            &sim.spawner(),
            cfg_a,
            BoxConfig::standard("b"),
            &[HopConfig::clean(10_000_000)],
            31,
        );
        let (src, _dst) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        open_video_stream(
            &pair.a,
            &pair.b,
            CaptureConfig {
                rect: Rect::new(0, 0, 256, 192),
                rate: RateFraction::new(2, 5),
                lines_per_segment: 192, // Frame-sized segments: 20ms bursts.
                mode: LineMode::Dpcm,
            },
        );
        sim.run_until(SimTime::from_secs(8));
        let mut lat = pair.b.speaker.latency_ns();
        let p99 = lat.percentile(99.0);
        let drops = pair.a.switch_stats.dropped(src, "net-audio");
        rows.push((cap, p99, drops));
        table.row_owned(vec![
            cap.to_string(),
            format!("{:.1}", p99 / 1e6),
            drops.to_string(),
        ]);
    }
    AudioBufferAblationResult { rows, table }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_target_trades_silence_for_delay() {
        let r = clawback_target_ablation();
        let silence_at = |t: usize| {
            r.rows
                .iter()
                .find(|&&(x, _, _)| x == t)
                .map(|&(_, s, _)| s)
                .unwrap()
        };
        let delay_at = |t: usize| {
            r.rows
                .iter()
                .find(|&&(x, _, _)| x == t)
                .map(|&(_, _, d)| d)
                .unwrap()
        };
        // A zero target claws into the jitter headroom and stutters; the
        // paper's 2-block (4ms) default silences far less.
        assert!(
            silence_at(0) > 4.0 * silence_at(2).max(0.25),
            "target 0: {} vs target 2: {}\n{}",
            silence_at(0),
            silence_at(2),
            r.table
        );
        // The target floors the post-spike standing delay.
        assert!(delay_at(8) > delay_at(2) + 3e6, "\n{}", r.table);
        assert!(delay_at(2) >= delay_at(0), "\n{}", r.table);
    }

    #[test]
    fn a2_buffer_size_trades_drops_for_latency() {
        let r = audio_net_buffer_ablation();
        let (small_cap, small_p99, small_drops) = r.rows[0];
        let (big_cap, big_p99, big_drops) = *r.rows.last().unwrap();
        assert_eq!(small_cap, 1);
        assert_eq!(big_cap, 32);
        // A single-slot buffer drops audio behind video bursts; a big one
        // does not but rides out bursts as latency.
        assert!(
            small_drops > big_drops,
            "drops {small_drops} vs {big_drops}\n{}",
            r.table
        );
        assert!(
            big_p99 >= small_p99 * 0.8,
            "p99 {small_p99} vs {big_p99}\n{}",
            r.table
        );
        // The paper's 8-segment middle ground: no drops, bounded latency.
        let (_, mid_p99, mid_drops) = r.rows[2];
        assert_eq!(mid_drops, 0, "\n{}", r.table);
        assert!(mid_p99 < 80e6, "\n{}", r.table);
    }
}
