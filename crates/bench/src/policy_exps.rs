//! Experiments E4 and E10–E12: the overload/priority principles in action.

use pandora::audio_board::{spawn_audio_playback, spawn_stream_generators, PlaybackConfig};
use pandora::pandora_box::{connect_pair, open_audio_shout, open_video_stream};
use pandora::{BoxConfig, OutputId, StreamKind, TxMode};
use pandora_atm::HopConfig;
use pandora_audio::gen::Tone;
use pandora_buffers::Report;
use pandora_metrics::Table;
use pandora_segment::{AudioSegment, StreamId};
use pandora_sim::{channel, unbounded, Cpu, SimDuration, SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

/// Result of the E4 jitter experiment.
pub struct VideoJitterResult {
    /// `(label, audio jitter p2p ns, max audio hold-up ns)` rows.
    pub rows: Vec<(String, f64, f64)>,
    /// The printable table.
    pub table: Table,
}

/// E4: "our network code introduces more latency than necessary because
/// segment transmissions are not interleaved. Thus video segments can hold
/// up following audio segments, introducing up to 20ms of jitter in a
/// stream" (§4.2). Reproduced with a video call sharing the network
/// output, non-interleaved vs the interleaved ablation.
pub fn video_jitter() -> VideoJitterResult {
    let mut rows = Vec::new();
    let mut table = Table::new(
        "T4 (§4.2): audio jitter from non-interleaved video segment transmission",
        &[
            "tx mode",
            "video",
            "audio jitter p2p (ms)",
            "max audio hold-up (ms)",
        ],
    );
    for (label, tx_mode, with_video) in [
        ("non-interleaved", TxMode::NonInterleaved, false),
        ("non-interleaved", TxMode::NonInterleaved, true),
        ("interleaved", TxMode::Interleaved, true),
    ] {
        let mut sim = Simulation::new();
        let mut cfg_a = BoxConfig::standard("a");
        // A 10 Mbit/s attachment (ATM-ring-era rate) makes large video
        // segments occupy the wire for many milliseconds.
        cfg_a.tx_mode = tx_mode;
        let cfg_b = BoxConfig::standard("b");
        let pair = connect_pair(
            &sim.spawner(),
            cfg_a,
            cfg_b,
            &[HopConfig::clean(10_000_000)],
            5,
        );
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        if with_video {
            open_video_stream(
                &pair.a,
                &pair.b,
                CaptureConfig {
                    rect: Rect::new(0, 0, 256, 192),
                    rate: RateFraction::new(2, 5),
                    // Whole frames as single segments (~25 kB compressed):
                    // the "large blocks of video" of §3.7.2/§4.2.
                    lines_per_segment: 192,
                    mode: LineMode::Dpcm,
                },
            );
        }
        sim.run_until(SimTime::from_secs(5));
        let jitter = pair
            .b
            .speaker
            .jitter_of(StreamId(1))
            .map(|j| j.peak_to_peak())
            .unwrap_or(0.0);
        let holdup = pair.a.net_out_stats.audio_wait_ns().max();
        let video = if with_video { "yes" } else { "no" };
        rows.push((format!("{label}/{video}"), jitter, holdup));
        table.row_owned(vec![
            label.to_string(),
            video.to_string(),
            format!("{:.2}", jitter / 1e6),
            format!("{:.2}", holdup / 1e6),
        ]);
    }
    VideoJitterResult { rows, table }
}

/// Result of the E10 overload-policy experiment.
pub struct OverloadPolicyResult {
    /// P1: outgoing blocks captured vs expected, under CPU overload (%).
    pub outgoing_delivery: f64,
    /// P1: incoming late-tick fraction under the same overload.
    pub incoming_late_fraction: f64,
    /// P2: audio segments delivered end-to-end under link overload (%).
    pub audio_delivery: f64,
    /// P2: video segments delivered end-to-end under link overload (%).
    pub video_delivery: f64,
    /// P3: drops charged to the oldest vs the newest video stream.
    pub oldest_drops: u64,
    /// P3 companion figure.
    pub newest_drops: u64,
    /// The printable table.
    pub table: Table,
}

/// E10: principles P1–P3 under deliberate overload (§2.1).
pub fn overload_policy() -> OverloadPolicyResult {
    // --- P1: audio CPU overloaded by 6 incoming streams + 1 outgoing.
    let (outgoing_delivery, incoming_late) = {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("audio", SimDuration::from_nanos(700));
        let (tx, rx) = channel::<(StreamId, AudioSegment)>();
        let (rep_tx, _rep_rx) = unbounded::<Report>();
        let sink = spawn_audio_playback(
            &sim.spawner(),
            "p1",
            PlaybackConfig::default(),
            None,
            cpu.clone(),
            rx,
            rep_tx,
            SimDuration::from_millis(500),
        );
        let (mic_tx, mic_rx) = channel::<AudioSegment>();
        let cstats = pandora::audio_board::spawn_audio_capture(
            &sim.spawner(),
            "p1",
            pandora::audio_board::CaptureConfig {
                signal: Box::new(Tone::new(440.0, 8_000.0)),
                blocks_per_segment: 2,
                drift: 0.0,
                outgoing_cost: SimDuration::from_micros(250),
                fifo_depth: 16,
            },
            None,
            cpu,
            mic_tx,
        );
        sim.spawn(
            "mic-sink",
            async move { while mic_rx.recv().await.is_ok() {} },
        );
        spawn_stream_generators(&sim.spawner(), tx, 6, 2, SimTime::from_secs(3));
        sim.run_until(SimTime::from_secs(3));
        // 3s at 2ms blocks = 1500 outgoing blocks expected.
        let delivery = cstats.blocks() as f64 / 1_500.0;
        (delivery * 100.0, sink.late_fraction())
    };

    // --- P2 and P3: a 6 Mbit/s bottleneck carrying one audio call plus
    // two video streams (one old, one new).
    let (audio_delivery, video_delivery, oldest_drops, newest_drops) = {
        let mut sim = Simulation::new();
        let mut cfg_a = BoxConfig::standard("a");
        cfg_a.video_backlog_cap = 12;
        let pair = connect_pair(
            &sim.spawner(),
            cfg_a,
            BoxConfig::standard("b"),
            &[HopConfig::clean(6_000_000)],
            9,
        );
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        // Full-rate video: ~5.5 Mbit/s per stream, so two streams swamp
        // the 6 Mbit/s attachment.
        let big_video = CaptureConfig {
            rect: Rect::new(0, 0, 256, 192),
            rate: RateFraction::FULL,
            lines_per_segment: 64,
            mode: LineMode::Dpcm,
        };
        // The "old" stream opens at t=0; the "new" one joins at t=2s.
        let (old_src, _old_dst, _h1) = open_video_stream(&pair.a, &pair.b, big_video);
        sim.run_until(SimTime::from_secs(2));
        let (new_src, _new_dst, _h2) = open_video_stream(&pair.a, &pair.b, big_video);
        sim.run_until(SimTime::from_secs(8));
        let audio_sent = pair.a.net_out_stats.audio_segments();
        let audio_recv = pair.b.speaker.segments_received();
        let audio_delivery = audio_recv as f64 / audio_sent.max(1) as f64 * 100.0;
        let video_sent = pair.a.net_out_stats.video_segments();
        let video_offered = video_sent
            + pair.a.net_out_stats.p3_drops_total()
            + pair.a.switch_stats.dropped_total();
        let video_delivery = video_sent as f64 / video_offered.max(1) as f64 * 100.0;
        (
            audio_delivery,
            video_delivery,
            pair.a.net_out_stats.p3_drops(old_src),
            pair.a.net_out_stats.p3_drops(new_src),
        )
    };

    let mut table = Table::new(
        "T10 (§2.1): degradation order under overload (P1/P2/P3)",
        &["principle", "metric", "value"],
    );
    table.row_owned(vec![
        "P1 outgoing-first".into(),
        "outgoing blocks delivered under CPU overload".into(),
        format!("{outgoing_delivery:.1}%"),
    ]);
    table.row_owned(vec![
        "P1 outgoing-first".into(),
        "incoming late mix ticks under the same load".into(),
        format!("{:.1}%", incoming_late * 100.0),
    ]);
    table.row_owned(vec![
        "P2 audio-first".into(),
        "audio segments through 6 Mbit/s bottleneck".into(),
        format!("{audio_delivery:.1}%"),
    ]);
    table.row_owned(vec![
        "P2 audio-first".into(),
        "video segments through the same bottleneck".into(),
        format!("{video_delivery:.1}%"),
    ]);
    table.row_owned(vec![
        "P3 newest-first".into(),
        "drops charged to oldest video stream".into(),
        oldest_drops.to_string(),
    ]);
    table.row_owned(vec![
        "P3 newest-first".into(),
        "drops charged to newest video stream".into(),
        newest_drops.to_string(),
    ]);
    OverloadPolicyResult {
        outgoing_delivery,
        incoming_late_fraction: incoming_late,
        audio_delivery,
        video_delivery,
        oldest_drops,
        newest_drops,
        table,
    }
}

/// Result of the E11 command-latency experiment.
pub struct CommandLatencyResult {
    /// Time from command issue to its report, with the switch saturated (ns).
    pub latency_under_load_ns: f64,
    /// Same, idle (ns).
    pub latency_idle_ns: f64,
    /// The printable table.
    pub table: Table,
}

/// E11 (P4): "it should not be possible for stream processing to prevent
/// the transport and execution of commands" (§2.1).
pub fn command_latency() -> CommandLatencyResult {
    let run = |loaded: bool| -> f64 {
        let mut sim = Simulation::new();
        let cfg_a = BoxConfig::standard("a");
        let pair = connect_pair(
            &sim.spawner(),
            cfg_a,
            BoxConfig::standard("b"),
            &[HopConfig::clean(6_000_000)],
            13,
        );
        let (src, _dst) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
        if loaded {
            for _ in 0..3 {
                open_video_stream(
                    &pair.a,
                    &pair.b,
                    CaptureConfig {
                        rect: Rect::new(0, 0, 256, 192),
                        rate: RateFraction::FULL,
                        lines_per_segment: 96,
                        mode: LineMode::Dpcm,
                    },
                );
            }
        }
        sim.run_until(SimTime::from_secs(2));
        let issued = sim.now();
        pair.a.query_stream(src);
        // Run until the report shows up.
        let mut reply = None;
        for _ in 0..1_000 {
            sim.run_for(SimDuration::from_millis(1));
            if let Some(r) = pair
                .a
                .log
                .of_class(pandora_buffers::ReportClass::Info)
                .into_iter()
                .find(|r| r.time >= issued)
            {
                reply = Some(r.time);
                break;
            }
        }
        let reply = reply.expect("command starved: no report");
        (reply - issued).as_nanos() as f64
    };
    let idle = run(false);
    let loaded = run(true);
    let mut table = Table::new(
        "T11 (§2.1 P4): switch Query command round-trip",
        &["condition", "command latency (us)"],
    );
    table.row_owned(vec!["idle".into(), format!("{:.1}", idle / 1e3)]);
    table.row_owned(vec![
        "network saturated by video".into(),
        format!("{:.1}", loaded / 1e3),
    ]);
    CommandLatencyResult {
        latency_under_load_ns: loaded,
        latency_idle_ns: idle,
        table,
    }
}

/// Result of the E12 splitting experiment.
pub struct SplitResult {
    /// Segments delivered to the healthy local destination.
    pub healthy_delivered: u64,
    /// Segments delivered to the stalled destination.
    pub stalled_delivered: u64,
    /// Drops recorded by the switch for the stalled output only.
    pub stalled_drops: u64,
    /// Segment sequence gaps seen by the recorder across a mid-stream
    /// destination addition/removal (must be 0 — Principle 6).
    pub recorder_gaps: u64,
    /// Segments recorded.
    pub recorded: u64,
    /// The printable table.
    pub table: Table,
}

/// E12 (P5 + P6): "downstream performance bottlenecks should not affect
/// streams that have been split off earlier" and "splitting a stream to an
/// extra destination, or closing down one of several destinations, should
/// not affect the other copies of that stream" (§2.2).
pub fn split_independence() -> SplitResult {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[HopConfig::clean(50_000_000)],
        21,
    );
    // A local source split to the local speaker and the repository tap.
    let s = pair
        .a
        .start_audio_source(Box::new(Tone::new(440.0, 8_000.0)));
    pair.a.set_route(
        s,
        StreamKind::Audio,
        vec![OutputId::Audio, OutputId::Repository],
    );
    // Recorder on the repository tap, tracking sequence numbers — it
    // records for one second and then stalls for good (the overloaded
    // destination of Principle 5).
    let repo_rx = pair.a.take_repository_rx().expect("tap");
    let recorded = std::rc::Rc::new(std::cell::Cell::new(0u64));
    let gaps = std::rc::Rc::new(std::cell::Cell::new(0u64));
    {
        let recorded = recorded.clone();
        let gaps = gaps.clone();
        sim.spawn("recorder", async move {
            let mut tracker = pandora_segment::SeqTracker::new();
            let stall_at = SimTime::from_secs(1);
            while pandora_sim::now() < stall_at {
                let Ok((_sid, seg)) = repo_rx.recv().await else {
                    return;
                };
                if let pandora_segment::SeqEvent::Gap { missing } =
                    tracker.observe(seg.common().sequence)
                {
                    gaps.set(gaps.get() + missing as u64);
                }
                recorded.set(recorded.get() + 1);
            }
            // Stalled: the repository decoupling buffer wedges; the switch
            // must shed for this output only.
            std::future::pending::<()>().await;
        });
    }
    sim.run_until(SimTime::from_secs(1));
    // Mid-stream re-plumbing (P6): add and later remove a third
    // destination while data flows; the surviving copies must see no
    // discontinuity.
    pair.a.add_dest(s, OutputId::Mixer);
    sim.run_until(SimTime::from_secs(3));
    pair.a.remove_dest(s, OutputId::Mixer);
    sim.run_until(SimTime::from_secs(4));

    let healthy = pair.a.speaker.segments_received();
    let stalled_drops = pair.a.switch_stats.dropped(s, "repository");
    let mut table = Table::new(
        "T12 (§2.2 P5/P6): 3-way split with one stalled destination",
        &["metric", "value"],
    );
    table.row_owned(vec![
        "segments to healthy speaker (4s)".into(),
        healthy.to_string(),
    ]);
    table.row_owned(vec![
        "segments recorded before stall (1s)".into(),
        recorded.get().to_string(),
    ]);
    table.row_owned(vec![
        "sequence gaps at recorder".into(),
        gaps.get().to_string(),
    ]);
    table.row_owned(vec![
        "speaker gaps across re-plumbing".into(),
        pair.a.speaker.segments_lost().to_string(),
    ]);
    table.row_owned(vec![
        "switch drops for stalled output".into(),
        stalled_drops.to_string(),
    ]);
    let healthy_lost = pair.a.speaker.segments_lost();
    let _ = healthy_lost;
    SplitResult {
        healthy_delivered: healthy,
        stalled_delivered: 0,
        stalled_drops,
        recorder_gaps: gaps.get(),
        recorded: recorded.get(),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_noninterleaved_video_adds_up_to_20ms_jitter() {
        let r = video_jitter();
        let (_, jitter_novideo, _) = &r.rows[0];
        let (_, jitter_ni, holdup_ni) = &r.rows[1];
        let (_, jitter_il, holdup_il) = &r.rows[2];
        // Without video: small jitter.
        assert!(
            *jitter_novideo < 3e6,
            "baseline {}ns\n{}",
            jitter_novideo,
            r.table
        );
        // Non-interleaved video: hold-ups in the ~10-25ms range — the
        // paper's "up to 20ms".
        assert!(*holdup_ni > 8e6, "hold-up {}ns\n{}", holdup_ni, r.table);
        assert!(*holdup_ni < 40e6, "hold-up {}ns", holdup_ni);
        assert!(
            *jitter_ni > 2.0 * *jitter_novideo,
            "jitter did not grow\n{}",
            r.table
        );
        // Interleaving fixes it.
        assert!(
            *holdup_il < *holdup_ni / 4.0,
            "interleaved {holdup_il} vs {holdup_ni}"
        );
        let _ = jitter_il;
    }

    #[test]
    fn e10_priorities_order_degradation() {
        let r = overload_policy();
        // P1: outgoing survived; incoming degraded.
        assert!(
            r.outgoing_delivery > 99.0,
            "outgoing {}%\n{}",
            r.outgoing_delivery,
            r.table
        );
        assert!(
            r.incoming_late_fraction > 0.3,
            "incoming never degraded\n{}",
            r.table
        );
        // P2: audio sails through; video is shed.
        assert!(
            r.audio_delivery > 97.0,
            "audio {}%\n{}",
            r.audio_delivery,
            r.table
        );
        assert!(
            r.video_delivery < 90.0,
            "video {}%\n{}",
            r.video_delivery,
            r.table
        );
        // P3: the old stream takes (at least almost) all the scheduler drops.
        assert!(r.oldest_drops > 0, "\n{}", r.table);
        assert!(
            r.oldest_drops > r.newest_drops,
            "{} vs {}",
            r.oldest_drops,
            r.newest_drops
        );
    }

    #[test]
    fn e11_commands_unaffected_by_load() {
        let r = command_latency();
        // Commands land within a couple of milliseconds even when the data
        // path is saturated (vs seconds of queued video).
        assert!(
            r.latency_under_load_ns < 5e6,
            "command took {}ms\n{}",
            r.latency_under_load_ns / 1e6,
            r.table
        );
    }

    #[test]
    fn e12_split_survives_stall_and_replumb() {
        let r = split_independence();
        // ~4s at 4ms/segment ≈ 1000 segments to the healthy speaker even
        // though the recorder wedged at 1s.
        assert!(
            r.healthy_delivered > 900,
            "healthy {}\n{}",
            r.healthy_delivered,
            r.table
        );
        // The recorder saw a clean gap-free second before stalling.
        assert!(r.recorded > 200, "recorded {}\n{}", r.recorded, r.table);
        assert_eq!(r.recorder_gaps, 0, "gaps at recorder\n{}", r.table);
        assert!(
            r.stalled_drops > 500,
            "the stalled output never shed\n{}",
            r.table
        );
    }
}
