//! Experiments E8, E9, E14, E16: muting, loss concealment, repository
//! re-segmentation, decoupling mechanics.

use pandora_audio::gen::{Signal, Speech, Tone, Violin};
use pandora_audio::{quality, recovery, Block, MuteStage, Muting, MutingConfig};
use pandora_buffers::{spawn_decoupling_ready, BufferCommand, ReadyGate, Report};
use pandora_metrics::{Table, TimeSeries};
use pandora_segment::{AudioSegment, SequenceNumber, Timestamp};
use pandora_sim::{channel, unbounded, SimDuration, SimTime, Simulation};

/// Result of the E8 muting-trace experiment.
pub struct MutingResult {
    /// The mute-factor trace (time ns, factor).
    pub trace: TimeSeries,
    /// Blocks spent at 20 % after the speaker went quiet.
    pub deep_blocks: usize,
    /// Blocks spent at 50 % after the deep stage.
    pub half_blocks: usize,
    /// Blocks from threshold-crossing to the first muted mic block.
    pub reaction_blocks: usize,
    /// The printable table (the figure 4.1 series).
    pub table: Table,
}

/// E8: regenerates figure 4.1 — the muting function. A burst of loud
/// speaker output, then silence; the mic gain steps 100 % → 20 % (22 ms)
/// → 50 % (22 ms) → 100 %.
pub fn muting_function() -> MutingResult {
    let mut m = Muting::new(MutingConfig::default());
    let mut trace = TimeSeries::new("mute_factor");
    let loud = Block([pandora_audio::mulaw::encode(20_000); 16]);
    let quiet = Block::SILENCE;
    let mut reaction_blocks = usize::MAX;
    let mut deep_blocks = 0;
    let mut half_blocks = 0;
    // 10ms of silence, 10ms of loud speaker, then quiet.
    for i in 0..60usize {
        let speaker = if (5..10).contains(&i) { loud } else { quiet };
        m.observe_speaker(&speaker);
        trace.push(i as u64 * 2_000_000, m.factor());
        if i >= 5 && m.stage() != MuteStage::Full && reaction_blocks == usize::MAX {
            reaction_blocks = i - 5;
        }
        if i >= 10 {
            match m.stage() {
                MuteStage::Deep => deep_blocks += 1,
                MuteStage::Half => half_blocks += 1,
                MuteStage::Full => {}
            }
        }
    }
    let mut table = Table::new(
        "T8 (fig 4.1): the muting function — mic gain vs time (loud speaker 10-20 ms)",
        &["t (ms)", "mic gain"],
    );
    for &(t, v) in trace.points() {
        table.row_owned(vec![format!("{}", t / 1_000_000), format!("{v:.2}")]);
    }
    MutingResult {
        trace,
        deep_blocks,
        half_blocks,
        reaction_blocks,
        table,
    }
}

/// Result of the E9 loss-concealment experiment.
pub struct ConcealmentResult {
    /// `(signal, mechanism, drop period, SNR dB, energy holes)` rows.
    pub rows: Vec<(String, String, usize, f64, i64)>,
    /// The printable table.
    pub table: Table,
}

/// E9: the §3.8 perceptual ranking, reproduced as SNR. "Single byte
/// samples dropped occasionally were undetectable except during solo
/// violin pieces … Dropping occasional 2ms blocks was noticeable in most
/// music, but rarely in speech. If 2ms blocks are repeatedly dropped, the
/// speech sounds gravelly. … Replaying the last 2ms block occasionally is
/// perfectly acceptable."
pub fn loss_concealment() -> ConcealmentResult {
    type SignalFactory = Box<dyn Fn() -> Box<dyn Signal>>;
    let signals: Vec<(&str, SignalFactory)> = vec![
        ("tone", Box::new(|| Box::new(Tone::new(440.0, 10_000.0)))),
        (
            "violin",
            Box::new(|| Box::new(Violin::new(440.0, 10_000.0))),
        ),
        ("speech", Box::new(|| Box::new(Speech::new(7)))),
    ];
    let mut rows = Vec::new();
    let mut table = Table::new(
        "T9 (§3.8): loss concealment — SNR dB (and 2ms energy holes) vs drop rate, 4 s",
        &["signal", "mechanism", "1/1000", "1/100", "1/10"],
    );
    for (name, mk) in &signals {
        for (mech, is_samples, policy) in [
            (
                "drop samples (repeat last)",
                true,
                recovery::Concealment::RepeatLast,
            ),
            (
                "drop blocks (zero fill)",
                false,
                recovery::Concealment::Zero,
            ),
            (
                "drop blocks (replay last)",
                false,
                recovery::Concealment::RepeatLast,
            ),
        ] {
            let mut cells = Vec::new();
            for period in [1_000usize, 100, 10] {
                let mut sig = mk();
                let blocks: Vec<Block> = (0..2_000).map(|_| sig.next_block()).collect();
                let degraded = if is_samples {
                    let samples: Vec<u8> = blocks.iter().flat_map(|b| b.0).collect();
                    let repaired = recovery::drop_samples_repeat_last(&samples, period * 16);
                    repaired
                        .chunks_exact(16)
                        .map(Block::from_slice)
                        .collect::<Vec<_>>()
                } else {
                    recovery::drop_and_conceal(&blocks, period, policy).0
                };
                let snr = quality::snr_db(&blocks, &degraded);
                // Energy holes: 2ms interruptions in the sound — the
                // paper's objection to zero-fill.
                let holes = quality::energy_holes(&blocks, &degraded) as i64;
                rows.push((name.to_string(), mech.to_string(), period, snr, holes));
                cells.push(if snr.is_infinite() {
                    format!("inf ({holes})")
                } else {
                    format!("{snr:.1} ({holes})")
                });
            }
            table.row_owned(vec![
                name.to_string(),
                mech.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    ConcealmentResult { rows, table }
}

/// Result of the E14 re-segmentation experiment.
pub struct ResegmentResult {
    /// Live-format header overhead fraction.
    pub live_overhead: f64,
    /// Repository-format header overhead fraction.
    pub repo_overhead: f64,
    /// Storage saved by rewriting.
    pub saving: f64,
    /// Audio byte-exactness of the rewrite.
    pub lossless: bool,
    /// The printable table.
    pub table: Table,
}

/// E14: the §3.2 repository rewrite — 2 ms blocks merged into 40 ms
/// segments of 320 data bytes + a 36-byte header.
pub fn resegmentation() -> ResegmentResult {
    let mut sig = Tone::new(440.0, 10_000.0);
    let live: Vec<AudioSegment> = (0..500u32)
        .map(|i| {
            let mut data = Vec::new();
            data.extend(sig.next_block().0);
            data.extend(sig.next_block().0);
            AudioSegment::from_blocks(
                SequenceNumber(i),
                Timestamp::from_nanos(i as u64 * 4_000_000),
                data,
            )
        })
        .collect();
    let repo = pandora_segment::reseg::to_repository_format(&live);
    let live_bytes: usize = live.iter().map(|s| s.wire_bytes()).sum();
    let repo_bytes: usize = repo.iter().map(|s| s.wire_bytes()).sum();
    let live_data: Vec<u8> = live.iter().flat_map(|s| s.data.clone()).collect();
    let repo_data: Vec<u8> = repo.iter().flat_map(|s| s.data.clone()).collect();
    let live_overhead = 36.0 / 68.0;
    let repo_overhead = 36.0 / 356.0;
    let saving = 1.0 - repo_bytes as f64 / live_bytes as f64;
    let mut table = Table::new(
        "T14 (§3.2): repository re-segmentation (2 s of audio)",
        &["format", "segments", "bytes", "header overhead"],
    );
    table.row_owned(vec![
        "live (2 blocks/segment)".into(),
        live.len().to_string(),
        live_bytes.to_string(),
        format!("{:.1}%", live_overhead * 100.0),
    ]);
    table.row_owned(vec![
        "repository (20 blocks/segment)".into(),
        repo.len().to_string(),
        repo_bytes.to_string(),
        format!("{:.1}%", repo_overhead * 100.0),
    ]);
    table.row_owned(vec![
        "saving".into(),
        String::new(),
        format!("{:.1}%", saving * 100.0),
        String::new(),
    ]);
    ResegmentResult {
        live_overhead,
        repo_overhead,
        saving,
        lossless: live_data == repo_data,
        table,
    }
}

/// Result of the E16 decoupling-mechanics experiment.
pub struct DecouplingResult {
    /// Offers made by the never-blocking upstream.
    pub offers: u64,
    /// Offers that were carried.
    pub sent: u64,
    /// Offers dropped at the gate.
    pub dropped: u64,
    /// Virtual time the producer spent blocked (must be 0).
    pub producer_blocked_ns: u64,
    /// Items lost across a live resize (must be 0).
    pub resize_losses: u64,
    /// The printable table.
    pub table: Table,
}

/// E16 (§3.7.1): the ready-channel protocol never blocks upstream, drops
/// are counted at the buffer, and a live resize loses nothing.
pub fn decoupling_mechanics() -> DecouplingResult {
    // (a) Stalled consumer: upstream stays live, drops counted.
    let mut sim = Simulation::new();
    let (in_tx, in_rx) = channel::<u64>();
    let (out_tx, out_rx) = channel::<u64>();
    let (rep_tx, _rep_rx) = unbounded::<Report>();
    let (_handle, ready_rx) =
        spawn_decoupling_ready(&sim.spawner(), "e16", 8, in_rx, out_tx, rep_tx.clone());
    let stats = std::rc::Rc::new(std::cell::Cell::new((0u64, 0u64, 0u64)));
    {
        let stats = stats.clone();
        sim.spawn("producer", async move {
            let mut gate = ReadyGate::new(in_tx, ready_rx);
            let mut blocked_ns = 0u64;
            for i in 0..1_000u64 {
                let before = pandora_sim::now();
                gate.offer(i).await;
                blocked_ns += (pandora_sim::now() - before).as_nanos();
                pandora_sim::delay(SimDuration::from_millis(1)).await;
            }
            stats.set((gate.sent(), gate.dropped(), blocked_ns));
        });
    }
    // A consumer that drains only the first 100ms then stalls for good.
    sim.spawn("consumer", async move {
        let stop = SimTime::from_millis(100);
        while pandora_sim::now() < stop {
            pandora_sim::delay(SimDuration::from_millis(2)).await;
            if out_rx.recv().await.is_err() {
                return;
            }
        }
        std::future::pending::<()>().await;
    });
    sim.run_until(SimTime::from_secs(2));
    let (sent, dropped, blocked_ns) = stats.get();

    // (b) Live resize without loss.
    let mut sim2 = Simulation::new();
    let (in_tx2, in_rx2) = channel::<u64>();
    let (out_tx2, out_rx2) = channel::<u64>();
    let (rep_tx2, _r) = unbounded::<Report>();
    let handle2 =
        pandora_buffers::spawn_decoupling(&sim2.spawner(), "rsz", 16, in_rx2, out_tx2, rep_tx2);
    {
        let h = handle2.clone();
        sim2.spawn("producer", async move {
            for i in 0..500u64 {
                in_tx2.send(i).await.unwrap();
                if i == 250 {
                    h.command(BufferCommand::SetCapacity(2)).await;
                }
                if i == 400 {
                    h.command(BufferCommand::SetCapacity(64)).await;
                }
            }
        });
    }
    let received = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    {
        let received = received.clone();
        sim2.spawn("consumer", async move {
            while let Ok(v) = out_rx2.recv().await {
                received.borrow_mut().push(v);
                pandora_sim::delay(SimDuration::from_micros(500)).await;
            }
        });
    }
    sim2.run_until_idle();
    let got = received.borrow();
    let resize_losses = 500 - got.len() as u64;

    let mut table = Table::new(
        "T16 (§3.7.1): decoupling buffer mechanics",
        &["metric", "value"],
    );
    table.row_owned(vec![
        "offers (1 per ms, consumer stalls at 100ms)".into(),
        "1000".into(),
    ]);
    table.row_owned(vec!["carried".into(), sent.to_string()]);
    table.row_owned(vec!["dropped at gate".into(), dropped.to_string()]);
    table.row_owned(vec![
        "producer time spent blocked".into(),
        format!("{blocked_ns} ns"),
    ]);
    table.row_owned(vec![
        "items lost across live resizes".into(),
        resize_losses.to_string(),
    ]);
    DecouplingResult {
        offers: 1_000,
        sent,
        dropped,
        producer_blocked_ns: blocked_ns,
        resize_losses,
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_muting_trace_matches_figure() {
        let r = muting_function();
        // Reacts on the triggering block itself.
        assert_eq!(r.reaction_blocks, 0, "\n{}", r.table);
        // 22ms deep + 22ms half after the speaker goes quiet (11 block
        // periods each; sampling after each observe reads 10 or 11
        // depending on which edge the transition lands on).
        assert!(
            (10..=11).contains(&r.deep_blocks),
            "deep {}\n{}",
            r.deep_blocks,
            r.table
        );
        assert!(
            (10..=11).contains(&r.half_blocks),
            "half {}\n{}",
            r.half_blocks,
            r.table
        );
        // The trace visits exactly the three factors of figure 4.1.
        let factors: std::collections::BTreeSet<String> = r
            .trace
            .points()
            .iter()
            .map(|&(_, v)| format!("{v:.2}"))
            .collect();
        assert_eq!(
            factors.into_iter().collect::<Vec<_>>(),
            vec!["0.20", "0.50", "1.00"]
        );
    }

    #[test]
    fn e9_quality_ordering_matches_paper() {
        let r = loss_concealment();
        let get = |sig: &str, mech: &str, period: usize| -> (f64, i64) {
            r.rows
                .iter()
                .find(|(s, m, p, _, _)| s == sig && m.starts_with(mech) && *p == period)
                .map(|&(_, _, _, snr, clicks)| (snr, clicks))
                .expect("row")
        };
        // Occasional sample drops beat occasional block drops on every
        // signal ("single byte samples dropped occasionally were
        // undetectable").
        for sig in ["tone", "violin", "speech"] {
            assert!(
                get(sig, "drop samples", 100).0 > get(sig, "drop blocks (zero", 100).0,
                "{sig}: samples should beat blocks\n{}",
                r.table
            );
        }
        // Replay-last cuts no energy holes; zero-fill cuts one per dropped
        // audible block — the reason the paper chose replay ("the recovery
        // from lost data should not create unpleasant sound effects").
        for sig in ["tone", "violin", "speech"] {
            let zero_holes = get(sig, "drop blocks (zero", 10).1;
            let replay_holes = get(sig, "drop blocks (replay", 10).1;
            assert!(
                replay_holes < zero_holes / 4,
                "{sig}: replay {replay_holes} vs zero {zero_holes} holes\n{}",
                r.table
            );
        }
        // "Gravelly": frequent drops are much worse than occasional ones.
        assert!(
            get("speech", "drop blocks (replay", 10).0
                < get("speech", "drop blocks (replay", 1000).0 - 3.0,
            "\n{}",
            r.table
        );
    }

    #[test]
    fn e14_resegmentation_figures() {
        let r = resegmentation();
        assert!(r.lossless, "audio must be byte-identical\n{}", r.table);
        assert!((r.live_overhead - 0.529).abs() < 0.01);
        assert!((r.repo_overhead - 0.101).abs() < 0.01);
        assert!(r.saving > 0.45, "saving {}\n{}", r.saving, r.table);
    }

    #[test]
    fn e16_ready_protocol_never_blocks() {
        let r = decoupling_mechanics();
        assert_eq!(r.producer_blocked_ns, 0, "\n{}", r.table);
        assert_eq!(r.sent + r.dropped, r.offers);
        // ~50 carried in the first 100ms (2ms consumer) + buffer fill.
        assert!(r.sent >= 50, "sent {}\n{}", r.sent, r.table);
        assert!(r.dropped >= 900, "dropped {}\n{}", r.dropped, r.table);
        assert_eq!(r.resize_losses, 0, "\n{}", r.table);
    }
}
