//! Experiments E5–E7, E15: clawback adaptation, multi-rate clawback,
//! clock drift, and the SuperJanet high-jitter trial.

use pandora::pandora_box::{connect_pair, open_audio_shout};
use pandora::BoxConfig;
use pandora_atm::{HopConfig, JitterModel};
use pandora_audio::gen::Tone;
use pandora_buffers::{Clawback, ClawbackConfig, MultiRateClawback, MultiRateConfig};
use pandora_metrics::{Table, TimeSeries};
use pandora_sim::{SimDuration, SimTime, Simulation};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Drives a clawback buffer with jittered arrivals in pure virtual time
/// (no executor needed): arrivals are nominally every 2 ms with an extra
/// delay sampled from `jitter_ns(t)`; the mixer ticks every 2 ms.
///
/// Returns a time series of the buffer's delay (ns) sampled every tick.
fn drive_clawback(
    buf: &mut Clawback<u64>,
    seconds: u64,
    mut jitter_ns: impl FnMut(u64) -> u64,
    drift: f64,
    seed: u64,
) -> TimeSeries {
    let mut series = TimeSeries::new("clawback_delay");
    let _rng = SmallRng::seed_from_u64(seed);
    let block = 2_000_000u64;
    let end = seconds * 1_000_000_000;
    // Event-merge: arrival k is due at k*block/(1+drift) + jitter; ticks at
    // k*block. Process in time order.
    let mut arrivals: Vec<u64> = Vec::new();
    let mut k = 0u64;
    loop {
        let base = (k as f64 * block as f64 / (1.0 + drift)) as u64;
        if base > end {
            break;
        }
        arrivals.push(base + jitter_ns(base));
        k += 1;
    }
    arrivals.sort_unstable();
    let mut ai = 0usize;
    let mut t = block;
    while t <= end {
        while ai < arrivals.len() && arrivals[ai] <= t {
            buf.arrival(arrivals[ai]);
            ai += 1;
        }
        buf.tick();
        series.push(t, buf.delay_nanos() as f64);
        t += block;
    }
    series
}

/// Result of the E5 adaptation experiment.
pub struct ClawbackAdaptResult {
    /// Mean delay during the high-jitter epoch (ns).
    pub delay_during_jitter: f64,
    /// Delay at the end of the run (ns).
    pub final_delay: f64,
    /// Seconds from the step-down until the delay reached ≤ 6 ms.
    pub adaptation_seconds: f64,
    /// The printable table (delay trace samples).
    pub table: Table,
}

/// E5: "It will take about one minute to adjust to the change from 20ms
/// jitter correction to 4ms" at the clawback rate of 2 ms per 8 s
/// (§3.7.2).
pub fn clawback_adaptation() -> ClawbackAdaptResult {
    let mut buf = Clawback::new(ClawbackConfig::default());
    let step_at = 30u64 * 1_000_000_000;
    // The paper's jitter is queueing-induced: blocks bunch up behind
    // cross-traffic (the 20ms video hold-up of §4.2) and are released in
    // bursts. Model: a gateway that forwards everything queued every J.
    let bunch = |t: u64, period: u64| (period - (t % period)) % period;
    let series = drive_clawback(
        &mut buf,
        150,
        move |t| {
            if t < step_at {
                bunch(t, 20_000_000) // 20ms bunching epoch.
            } else {
                bunch(t, 2_000_000) // Quiet epoch: 2ms.
            }
        },
        0.0,
        1,
    );
    // The jitter-epoch depth is a sawtooth (burst then drain): report the
    // mean and let the peak show in the trace.
    let epoch: Vec<f64> = series
        .points()
        .iter()
        .filter(|&&(t, _)| t > 10_000_000_000 && t < step_at)
        .map(|&(_, v)| v)
        .collect();
    let delay_during = epoch.iter().sum::<f64>() / epoch.len().max(1) as f64;
    let tail: Vec<f64> = series
        .points()
        .iter()
        .filter(|&&(t, _)| t > 140_000_000_000)
        .map(|&(_, v)| v)
        .collect();
    let final_delay = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    // First time after the step that delay ≤ 6ms (3 blocks).
    let reached = series
        .points()
        .iter()
        .find(|&&(t, v)| t > step_at && v <= 6_000_000.0)
        .map(|&(t, _)| (t - step_at) as f64 / 1e9)
        .unwrap_or(f64::INFINITY);
    let mut table = Table::new(
        "T5 (§3.7.2): clawback delay after jitter drops from 20 ms to 2 ms at t=30 s",
        &["t (s)", "delay (ms)"],
    );
    for (t, v) in series.downsample(30) {
        table.row_owned(vec![
            format!("{:.0}", t as f64 / 1e9),
            format!("{:.1}", v / 1e6),
        ]);
    }
    ClawbackAdaptResult {
        delay_during_jitter: delay_during,
        final_delay,
        adaptation_seconds: reached,
        table,
    }
}

/// Result of the E6 multi-rate experiment.
pub struct MultiRateResult {
    /// Measured removal interval at ~10 ms standing contents (seconds).
    pub interval_10ms: f64,
    /// Measured removal interval at ~50 ms standing contents (seconds).
    pub interval_50ms: f64,
    /// Measured time for the delay to halve after jitter stops (seconds).
    pub half_life: f64,
    /// The printable table.
    pub table: Table,
}

/// E6: the proposed multi-rate clawback at the 20 block-second level:
/// "if the minimum contents were 10ms, we would be removing a 2ms block
/// every 2000 blocks, or 4 seconds. If the minimum contents were 50ms,
/// then we would remove a 2ms block every 400 blocks, or 0.8 seconds. …
/// The time to halve the delay when the jitter source is removed is
/// roughly 0.7 times the level … about 14 seconds" (§3.7.2).
pub fn multirate_clawback() -> MultiRateResult {
    // (a) Removal intervals at fixed standing occupancy.
    let mut intervals = Vec::new();
    for occupancy in [5usize, 25] {
        let mut buf = MultiRateClawback::new(MultiRateConfig::default());
        for _ in 0..occupancy {
            buf.arrival(0u64);
        }
        let mut t = 0f64;
        let mut removals = Vec::new();
        for _ in 0..40_000u64 {
            t += 0.002;
            if buf.arrival(0) == pandora_buffers::Arrival::ClawedBack {
                removals.push(t);
                while buf.len() < occupancy {
                    buf.arrival(0);
                }
            } else {
                buf.tick();
            }
        }
        let gaps: Vec<f64> = removals.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = if gaps.is_empty() {
            f64::INFINITY
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        };
        intervals.push(mean);
    }
    // (b) Half-life of the delay once the jitter source is removed.
    let mut buf = MultiRateClawback::new(MultiRateConfig::default());
    // Standing delay of 50 blocks (100ms).
    for _ in 0..50 {
        buf.arrival(0u64);
    }
    let initial = buf.len();
    let mut t = 0f64;
    let mut half_life = f64::INFINITY;
    for _ in 0..40_000u64 {
        t += 0.002;
        buf.arrival(0);
        buf.tick();
        if buf.len() <= initial / 2 {
            half_life = t;
            break;
        }
    }
    let mut table = Table::new(
        "T6 (§3.7.2): multi-rate clawback at level 20 block-seconds",
        &["quantity", "paper", "measured"],
    );
    table.row_owned(vec![
        "removal interval @10ms contents".into(),
        "4.0 s".into(),
        format!("{:.2} s", intervals[0]),
    ]);
    table.row_owned(vec![
        "removal interval @50ms contents".into(),
        "0.8 s".into(),
        format!("{:.2} s", intervals[1]),
    ]);
    table.row_owned(vec![
        "delay half-life after jitter stops".into(),
        "~14 s".into(),
        format!("{half_life:.1} s"),
    ]);
    MultiRateResult {
        interval_10ms: intervals[0],
        interval_50ms: intervals[1],
        half_life,
        table,
    }
}

/// Result of the E7 drift experiment.
pub struct DriftResult {
    /// `(drift, max buffer delay ns, over-limit drops)` per sweep point.
    pub rows: Vec<(f64, f64, u64)>,
    /// The printable table.
    pub table: Table,
}

/// E7: "the only remaining problem is clock drift where the source clock
/// is faster than the destination clock. This is covered by the same
/// clawback mechanism provided that the clawback rate is greater than the
/// maximum clock drift rate. Since our clocks are controlled by quartz
/// oscillators with a 1 in 10^5 drift rate, our 1 in 4000 clawback rate is
/// sufficient" (§3.7.2).
pub fn clock_drift_tolerance() -> DriftResult {
    let clawback_rate = 1.0 / 4096.0; // ≈ 2.44e-4.
    let mut table = Table::new(
        "T7 (§3.7.2): drift absorption — stable iff drift < clawback rate (1/4096 ≈ 2.4e-4)",
        &["source drift", "max delay (ms)", "cap drops", "stable"],
    );
    let mut rows = Vec::new();
    for drift in [1e-5f64, 5e-5, 1e-4, 2e-4, 3e-4, 5e-4] {
        let mut buf = Clawback::new(ClawbackConfig::default());
        let mut max_delay = 0f64;
        let series = drive_clawback(&mut buf, 600, |_| 0, drift, 3);
        for &(_, v) in series.points() {
            max_delay = max_delay.max(v);
        }
        let drops = buf.stats().over_limit;
        // Unstable = the buffer grows past the steady-state band (the cap
        // itself takes ~35 minutes to reach at drift just over the rate).
        let stable = drops == 0 && max_delay <= 20e6;
        rows.push((drift, max_delay, drops));
        table.row_owned(vec![
            format!("{drift:.0e}"),
            format!("{:.1}", max_delay / 1e6),
            drops.to_string(),
            if stable { "yes".into() } else { "NO".into() },
        ]);
        let _ = clawback_rate;
    }
    DriftResult { rows, table }
}

/// Result of the E15 SuperJanet experiment.
pub struct SuperJanetResult {
    /// Segments received at the far speaker.
    pub received: u64,
    /// Segments lost end to end.
    pub lost: u64,
    /// Late mix ticks at the far speaker.
    pub late_ticks: u64,
    /// Steady-state clawback delay (ns).
    pub steady_delay: f64,
    /// Peak-to-peak arrival jitter (ns).
    pub jitter_p2p: f64,
    /// The printable table.
    pub table: Table,
}

/// E15: "unmodified Pandora's Boxes communicated audio and video
/// successfully under the high jitter conditions of a connection from
/// Cambridge to London involving several networks and protocol
/// conversions" (§3.7.2). Four hops of bursty jitter, stock configuration.
pub fn superjanet() -> SuperJanetResult {
    let mut sim = Simulation::new();
    let hop = HopConfig {
        bits_per_sec: 34_000_000, // SuperJanet-era 34 Mbit/s trunks.
        latency: SimDuration::from_millis(2),
        jitter: JitterModel::Bursty {
            base: SimDuration::from_millis(4),
            burst: SimDuration::from_millis(25),
            burst_prob: 0.03,
        },
        loss: 0.0005,
    };
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("cam"),
        BoxConfig::standard("lon"),
        &[hop, hop, hop, hop],
        1993,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    sim.run_until(SimTime::from_secs(60));
    let sink = &pair.b.speaker;
    let jitter = sink
        .jitter_of(pandora_segment::StreamId(1))
        .map(|j| j.peak_to_peak());
    let delay = sink.delay_series().last_value().unwrap_or(0.0);
    let mut table = Table::new(
        "T15 (§3.7.2): SuperJanet trial — 4 bursty hops, stock boxes, 60 s call",
        &["metric", "value"],
    );
    table.row_owned(vec![
        "segments received".into(),
        sink.segments_received().to_string(),
    ]);
    table.row_owned(vec![
        "segments lost (cell loss)".into(),
        sink.segments_lost().to_string(),
    ]);
    table.row_owned(vec!["late mix ticks".into(), sink.late_ticks().to_string()]);
    table.row_owned(vec![
        "arrival jitter p2p".into(),
        format!("{:.1} ms", jitter.unwrap_or(0.0) / 1e6),
    ]);
    table.row_owned(vec![
        "steady clawback delay".into(),
        format!("{:.1} ms", delay / 1e6),
    ]);
    table.row_owned(vec![
        "blocks concealed".into(),
        sink.concealed().to_string(),
    ]);
    SuperJanetResult {
        received: sink.segments_received(),
        lost: sink.segments_lost(),
        late_ticks: sink.late_ticks(),
        steady_delay: delay,
        jitter_p2p: jitter.unwrap_or(0.0),
        table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_adaptation_takes_about_a_minute() {
        let r = clawback_adaptation();
        // During the 20ms-bunching epoch the buffer averages well above
        // the 4ms target (sawtooth 0..20ms, mean ≈ 9ms).
        assert!(
            r.delay_during_jitter > 6e6,
            "during {}ns\n{}",
            r.delay_during_jitter,
            r.table
        );
        // Afterwards it settles near the 4ms target.
        assert!(
            r.final_delay <= 8e6,
            "final {}ns\n{}",
            r.final_delay,
            r.table
        );
        // "About one minute" — accept 30..110s.
        assert!(
            (30.0..=110.0).contains(&r.adaptation_seconds),
            "adaptation {}s\n{}",
            r.adaptation_seconds,
            r.table
        );
    }

    #[test]
    fn e6_multirate_intervals_match_paper() {
        let r = multirate_clawback();
        assert!(
            (3.0..=5.0).contains(&r.interval_10ms),
            "10ms interval {}\n{}",
            r.interval_10ms,
            r.table
        );
        assert!(
            (0.6..=1.0).contains(&r.interval_50ms),
            "50ms interval {}",
            r.interval_50ms
        );
        assert!(
            (7.0..=21.0).contains(&r.half_life),
            "half-life {}",
            r.half_life
        );
    }

    #[test]
    fn e7_drift_stable_below_clawback_rate() {
        let r = clock_drift_tolerance();
        for &(drift, max_delay, drops) in &r.rows {
            if drift < 2.0e-4 {
                assert_eq!(drops, 0, "drift {drift} dropped at cap\n{}", r.table);
                assert!(max_delay < 120e6, "drift {drift} delay {max_delay}");
            }
            if drift >= 3.0e-4 {
                assert!(
                    drops > 0 || max_delay > 20e6,
                    "drift {drift} should exceed the clawback rate\n{}",
                    r.table
                );
            }
        }
    }

    #[test]
    fn e15_superjanet_call_survives() {
        let r = superjanet();
        // A 60s call at 4ms/segment ≈ 15000 segments; nearly all arrive.
        assert!(r.received > 14_000, "received {}\n{}", r.received, r.table);
        let loss_frac = r.lost as f64 / (r.received + r.lost) as f64;
        assert!(loss_frac < 0.02, "loss {loss_frac}");
        assert_eq!(r.late_ticks, 0, "audio CPU never overloaded");
        // Jitter was genuinely high and the clawback absorbed it.
        assert!(r.jitter_p2p > 10e6, "jitter {}ns", r.jitter_p2p);
        assert!(r.steady_delay < 120e6, "delay within the 120ms cap");
    }
}
