//! Golden-table regression for the T5 clawback adaptation experiment
//! (§3.7.2). The experiment is fully deterministic (zero drift, fixed
//! bunching model), so its rendered table is compared byte-for-byte
//! against a checked-in snapshot. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p pandora-bench --test golden_t5` after
//! an intentional behaviour change, and review the diff.

use pandora_bench::clawback_exps::clawback_adaptation;

const GOLDEN: &str = include_str!("golden/t5_clawback.txt");
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/t5_clawback.txt");

#[test]
fn t5_clawback_table_matches_golden() {
    let result = clawback_adaptation();
    let rendered = result.table.to_string();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    // The headline result must stay in the paper's ballpark regardless
    // of formatting: "about one minute to adjust".
    assert!(
        result.adaptation_seconds > 20.0 && result.adaptation_seconds < 90.0,
        "adaptation took {}s",
        result.adaptation_seconds
    );
    assert_eq!(
        rendered, GOLDEN,
        "T5 table drifted from the golden snapshot; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}
