//! End-to-end cost of regenerating each paper table (reduced parameters
//! where the full experiment runs many virtual minutes). The *results*
//! live in the repro binary and EXPERIMENTS.md; these benches track how
//! expensive the reproductions are to run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandora_bench::{clawback_exps, media_exps, policy_exps};

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("t6_multirate_clawback", |b| {
        b.iter(|| black_box(clawback_exps::multirate_clawback().interval_10ms))
    });
    group.bench_function("t8_muting_function", |b| {
        b.iter(|| black_box(media_exps::muting_function().deep_blocks))
    });
    group.bench_function("t9_loss_concealment", |b| {
        b.iter(|| black_box(media_exps::loss_concealment().rows.len()))
    });
    group.bench_function("t14_resegmentation", |b| {
        b.iter(|| black_box(media_exps::resegmentation().saving))
    });
    group.bench_function("t16_decoupling_mechanics", |b| {
        b.iter(|| black_box(media_exps::decoupling_mechanics().sent))
    });
    group.bench_function("t12_split_independence", |b| {
        b.iter(|| black_box(policy_exps::split_independence().healthy_delivered))
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
