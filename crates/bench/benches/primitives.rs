//! Host-side microbenchmarks of the hot data-path primitives.
//!
//! The paper's numbers are regenerated in virtual time by the `repro`
//! binary; these benches measure what the *simulator substrate* costs on
//! the host, per operation, which bounds how much virtual time can be
//! simulated per wall-clock second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pandora_audio::gen::{Signal, Tone};
use pandora_audio::{mix_blocks, mulaw, Block, Muting, MutingConfig};
use pandora_buffers::{Clawback, ClawbackConfig};
use pandora_segment::{wire, AudioSegment, Segment, SequenceNumber, Timestamp};
use pandora_video::dpcm::{compress_line, decompress_line, LineMode};

fn bench_mulaw(c: &mut Criterion) {
    c.bench_function("mulaw/encode_block_of_16", |b| {
        let pcm: Vec<i16> = (0..16).map(|i| (i * 1000) as i16).collect();
        b.iter(|| {
            for &s in &pcm {
                black_box(mulaw::encode(black_box(s)));
            }
        })
    });
    c.bench_function("mulaw/decode_block_of_16", |b| {
        let bytes: Vec<u8> = (0..16u8).map(|i| i * 13).collect();
        b.iter(|| {
            for &s in &bytes {
                black_box(mulaw::decode(black_box(s)));
            }
        })
    });
    c.bench_function("mulaw/scaling_table", |b| {
        b.iter(|| black_box(mulaw::scaling_table(black_box(0.2))))
    });
}

fn bench_mixing(c: &mut Criterion) {
    let mut tone = Tone::new(440.0, 8_000.0);
    let blocks: Vec<Block> = (0..5).map(|_| tone.next_block()).collect();
    c.bench_function("mix/5_streams_one_block", |b| {
        b.iter(|| black_box(mix_blocks(black_box(&blocks))))
    });
    let one = [blocks[0]];
    c.bench_function("mix/1_stream_one_block", |b| {
        b.iter(|| black_box(mix_blocks(black_box(&one))))
    });
}

fn bench_muting(c: &mut Criterion) {
    let mut m = Muting::new(MutingConfig::default());
    let mut tone = Tone::new(300.0, 20_000.0);
    let loud = tone.next_block();
    c.bench_function("muting/observe_plus_apply", |b| {
        b.iter(|| {
            m.observe_speaker(black_box(&loud));
            black_box(m.apply_mic(black_box(&loud)))
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let seg = Segment::Audio(AudioSegment::from_blocks(
        SequenceNumber(7),
        Timestamp(1234),
        vec![0x55; 32],
    ));
    let bytes = wire::encode(&seg);
    c.bench_function("wire/encode_audio_segment", |b| {
        b.iter(|| black_box(wire::encode(black_box(&seg))))
    });
    c.bench_function("wire/decode_audio_segment", |b| {
        b.iter(|| black_box(wire::decode(black_box(&bytes)).unwrap()))
    });
}

fn bench_dpcm(c: &mut Criterion) {
    let line: Vec<u8> = (0..768)
        .map(|i| (128.0 + 60.0 * (i as f64 * 0.05).sin()) as u8)
        .collect();
    let compressed = compress_line(&line, LineMode::Dpcm);
    c.bench_function("dpcm/compress_768px_line", |b| {
        b.iter(|| black_box(compress_line(black_box(&line), LineMode::Dpcm)))
    });
    c.bench_function("dpcm/decompress_768px_line", |b| {
        b.iter(|| black_box(decompress_line(black_box(&compressed), 768).unwrap()))
    });
}

fn bench_clawback(c: &mut Criterion) {
    c.bench_function("clawback/arrival_plus_tick", |b| {
        b.iter_batched_ref(
            || {
                let mut buf = Clawback::new(ClawbackConfig::default());
                for _ in 0..5 {
                    buf.arrival(0u64);
                }
                buf
            },
            |buf| {
                buf.arrival(black_box(1));
                black_box(buf.tick());
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_mulaw,
    bench_mixing,
    bench_muting,
    bench_wire,
    bench_dpcm,
    bench_clawback
);
criterion_main!(benches);
