//! Host-side cost of the simulation substrate itself: how fast can the
//! virtual-time world run? Each bench simulates a fixed amount of virtual
//! activity, so throughput here translates directly into how cheap the
//! paper-table regeneration is.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandora_sim::{channel, Cpu, SimDuration, SimTime, Simulation};

fn bench_channel_round_trips(c: &mut Criterion) {
    c.bench_function("sim/10k_rendezvous_round_trips", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let (tx, rx) = channel::<u64>();
            let (ack_tx, ack_rx) = channel::<u64>();
            sim.spawn("ping", async move {
                for i in 0..10_000u64 {
                    tx.send(i).await.unwrap();
                    ack_rx.recv().await.unwrap();
                }
            });
            sim.spawn("pong", async move {
                while let Ok(v) = rx.recv().await {
                    if ack_tx.send(v).await.is_err() {
                        return;
                    }
                }
            });
            sim.run_until_idle();
            black_box(sim.context_switches())
        })
    });
}

fn bench_cpu_claims(c: &mut Criterion) {
    c.bench_function("sim/10k_cpu_claims", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let cpu = Cpu::new("t", SimDuration::from_nanos(700));
            let cc = cpu.clone();
            sim.spawn("worker", async move {
                for _ in 0..10_000 {
                    cc.claim(SimDuration::from_micros(10)).await;
                }
            });
            sim.run_until_idle();
            black_box(cpu.claims())
        })
    });
}

fn bench_timers(c: &mut Criterion) {
    c.bench_function("sim/10k_timer_fires", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.spawn("sleeper", async move {
                for _ in 0..10_000 {
                    pandora_sim::delay(SimDuration::from_micros(100)).await;
                }
            });
            sim.run_until_idle();
            black_box(sim.now())
        })
    });
}

fn bench_full_box_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("one_virtual_second_of_duplex_audio_call", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let pair = pandora::connect_pair(
                &sim.spawner(),
                pandora::BoxConfig::standard("a"),
                pandora::BoxConfig::standard("b"),
                &[pandora_atm::HopConfig::clean(50_000_000)],
                7,
            );
            pandora::open_audio_shout(
                &pair.a,
                &pair.b,
                Box::new(pandora_audio::gen::Tone::new(440.0, 8_000.0)),
            );
            pandora::open_audio_shout(
                &pair.b,
                &pair.a,
                Box::new(pandora_audio::gen::Tone::new(300.0, 8_000.0)),
            );
            sim.run_until(SimTime::from_secs(1));
            black_box(pair.b.speaker.segments_received())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_channel_round_trips,
    bench_cpu_claims,
    bench_timers,
    bench_full_box_second
);
criterion_main!(benches);
