//! Microbenchmarks of the zero-copy transport path against the legacy
//! owned path: wire codec, AAL segmentation/reassembly, and slab/pool
//! churn. The tracked numbers live in `BENCH_transport.json` (see the
//! `bench-json` binary); these are the interactive `cargo bench` view.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandora_atm::{cells_gather, segment_to_cells, Reassembler, SlabReassembler, Vci};
use pandora_buffers::{ByteSlab, Pool};
use pandora_segment::{wire, AudioSegment, Segment, SequenceNumber, SlabSegment, Timestamp};

fn audio_segment() -> Segment {
    Segment::Audio(AudioSegment::from_blocks(
        SequenceNumber(7),
        Timestamp(1234),
        vec![0x55; 32],
    ))
}

fn bench_wire(c: &mut Criterion) {
    let seg = audio_segment();
    let bytes = wire::encode(&seg);
    c.bench_function("transport/wire_encode_audio", |b| {
        b.iter(|| black_box(wire::encode(black_box(&seg))))
    });
    c.bench_function("transport/wire_decode_view_audio", |b| {
        b.iter(|| black_box(wire::decode_view(black_box(&bytes)).unwrap().header))
    });
    c.bench_function("transport/wire_decode_owned_audio", |b| {
        b.iter(|| black_box(wire::decode(black_box(&bytes)).unwrap()))
    });
}

fn bench_aal(c: &mut Criterion) {
    let seg = audio_segment();
    let vci = Vci(9);
    c.bench_function("transport/aal_round_trip_legacy", |b| {
        let mut r = Reassembler::new();
        let mut seq = 0u32;
        b.iter(|| {
            let bytes = wire::encode(&seg);
            let cells = segment_to_cells(vci, &bytes, seq);
            seq = seq.wrapping_add(cells.len() as u32);
            let mut out = None;
            for cell in cells {
                out = r.push(cell).or(out);
            }
            let (_, frame) = out.unwrap();
            black_box(wire::decode(&frame).unwrap())
        })
    });
    c.bench_function("transport/aal_round_trip_slab", |b| {
        // `slab` stays bound so the arena handle outlives `sseg`'s region.
        let slab = ByteSlab::new(8, 64 * 1024);
        let sseg = SlabSegment::from_segment(&seg, &slab).unwrap();
        let mut r = SlabReassembler::new(slab.clone());
        let mut seq = 0u32;
        let mut scratch = vec![0u8; sseg.header.header_wire_bytes()];
        b.iter(|| {
            wire::encode_header_into(&sseg.header, &mut scratch);
            let cells = sseg
                .payload
                .copy_out_with(|p| cells_gather(vci, &scratch, p, seq));
            seq = seq.wrapping_add(cells.len() as u32);
            let mut out = None;
            for cell in cells {
                out = r.push(cell).or(out);
            }
            let (_, frame) = out.unwrap();
            black_box(wire::decode_slab(&frame).unwrap())
        })
    });
}

fn bench_arena(c: &mut Criterion) {
    let payload = vec![0xA5u8; 1024];
    c.bench_function("transport/slab_alloc_free", |b| {
        let slab = ByteSlab::new(8, 64 * 1024);
        b.iter(|| black_box(slab.try_alloc_copy(&payload).unwrap()))
    });
    c.bench_function("transport/pool_alloc_release", |b| {
        let slab = ByteSlab::new(8, 64 * 1024);
        let pool: Pool<SlabSegment> = Pool::new(64);
        let sseg = SlabSegment::from_segment(&audio_segment(), &slab).unwrap();
        b.iter(|| {
            let d = pool.try_alloc(sseg.clone()).unwrap();
            black_box(pool.release(d))
        })
    });
}

criterion_group!(benches, bench_wire, bench_aal, bench_arena);
criterion_main!(benches);
