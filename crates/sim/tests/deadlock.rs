//! Deadlock-detector integration tests.
//!
//! When `run_until_idle` quiesces with live tasks, no timer can ever wake
//! them again, so the simulation must surface the blocked set by name —
//! the virtual-time analogue of Pandora's watchdog reporting a wedged
//! transputer process.

use pandora_sim::{channel, Simulation, StopReason};

/// The canonical two-task cycle: each side receives before it sends, so
/// both block on a rendezvous that can never complete. The report must
/// name both tasks.
#[test]
fn two_task_channel_cycle_names_both_tasks() {
    let mut sim = Simulation::new();
    let (tx_a, rx_a) = channel::<u32>();
    let (tx_b, rx_b) = channel::<u32>();
    sim.spawn("ping", async move {
        let v = rx_b.recv().await.unwrap();
        let _ = tx_a.send(v).await;
    });
    sim.spawn("pong", async move {
        let v = rx_a.recv().await.unwrap();
        let _ = tx_b.send(v).await;
    });
    assert_eq!(sim.run_until_idle(), StopReason::Idle);
    let report = sim.deadlock_report().expect("cycle must be detected");
    assert_eq!(report.blocked, vec!["ping".to_string(), "pong".to_string()]);
    assert_eq!(sim.live_tasks(), 2);
}

/// A pipeline that drains completely must not trip the detector.
#[test]
fn clean_drain_reports_no_deadlock() {
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<u32>();
    sim.spawn("producer", async move {
        for i in 0..4 {
            tx.send(i).await.unwrap();
        }
    });
    sim.spawn("consumer", async move {
        for i in 0..4 {
            assert_eq!(rx.recv().await.unwrap(), i);
        }
    });
    assert_eq!(sim.run_until_idle(), StopReason::Idle);
    assert!(sim.deadlock_report().is_none());
    assert_eq!(sim.live_tasks(), 0);
}

/// A stale report from a deadlocked run is cleared once the blockage is
/// resolved and a later `run_until_idle` drains cleanly.
#[test]
fn report_clears_after_recovery() {
    let mut sim = Simulation::new();
    let (tx, rx) = channel::<u32>();
    sim.spawn("stuck-receiver", async move {
        assert_eq!(rx.recv().await.unwrap(), 9);
    });
    sim.run_until_idle();
    assert!(sim.deadlock_report().is_some());

    // Spawn the missing peer; the pair now completes.
    sim.spawn("late-sender", async move {
        tx.send(9).await.unwrap();
    });
    sim.run_until_idle();
    assert!(sim.deadlock_report().is_none());
    assert_eq!(sim.live_tasks(), 0);
}
