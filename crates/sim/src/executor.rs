//! The deterministic virtual-time executor.
//!
//! This is the stand-in for the Inmos transputer's hardware scheduler and
//! the Occam runtime (§3.1 of the paper). Tasks are plain Rust futures;
//! time is virtual and only advances when every task is blocked (on a
//! channel rendezvous, a timer or a CPU grant). Two priority levels mirror
//! the transputer's high/low priority processes, and a context-switch
//! counter lets experiments check claims like the "around 5kHz" context
//! switching rate of §4.2.
//!
//! Determinism: with the same spawn order and the same seeded workloads, a
//! simulation produces bit-identical schedules, which is what makes the
//! paper tables exactly reproducible.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// Scheduling priority of a task, mirroring the transputer's two levels.
///
/// In Pandora "the output processes have priority" (§3.7.1): data is pulled
/// out of the box ahead of being pushed in, so overload back-pressures
/// toward the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// High priority: polled before any low-priority task is considered.
    High,
    /// Low priority (the default for ordinary processes).
    #[default]
    Low,
}

/// Identifier of a spawned task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId {
    index: usize,
    gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Idle,
    Queued,
    Running,
    Done,
}

struct Slot {
    gen: u64,
    state: TaskState,
    future: Option<Pin<Box<dyn Future<Output = ()>>>>,
    waker: Option<Waker>,
    name: Rc<str>,
    priority: Priority,
    /// Fault-injection hold: a paused task is never polled; wake-ups are
    /// remembered in `pending_wake` and replayed on resume.
    paused: bool,
    pending_wake: bool,
}

struct WakeEntry {
    id: TaskId,
    woken: Arc<Mutex<Vec<TaskId>>>,
}

impl Wake for WakeEntry {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.lock().push(self.id);
    }
}

/// Which of the two firing lanes a timer occupies at its instant.
///
/// All [`Normal`] timers at an instant fire before any [`Late`] timer at
/// the same instant, regardless of registration order. The late lane
/// exists for the sharded runtime's ingress dispatchers: a delivery
/// timer re-registered at host-dependent moments (cross-shard entries
/// arrive whenever a neighbour thread gets there) must never perturb
/// the ordering of the ordinary timers the workload itself registered,
/// or same-seed runs would stop being byte-identical across shard
/// counts.
///
/// [`Normal`]: TimerLane::Normal
/// [`Late`]: TimerLane::Late
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerLane {
    Normal,
    Late,
}

struct TimerEntry {
    at: u64,
    lane: TimerLane,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.lane == other.lane && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.lane, self.seq).cmp(&(other.at, other.lane, other.seq))
    }
}

pub(crate) struct Inner {
    clock: Cell<u64>,
    tasks: RefCell<Vec<Slot>>,
    free: RefCell<Vec<usize>>,
    run_high: RefCell<VecDeque<TaskId>>,
    run_low: RefCell<VecDeque<TaskId>>,
    woken: Arc<Mutex<Vec<TaskId>>>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: Cell<u64>,
    ctx_switches: Cell<u64>,
    current: Cell<Option<TaskId>>,
    live_tasks: Cell<usize>,
    spawned_total: Cell<u64>,
}

impl Inner {
    fn new() -> Rc<Self> {
        Rc::new(Inner {
            clock: Cell::new(0),
            tasks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            run_high: RefCell::new(VecDeque::new()),
            run_low: RefCell::new(VecDeque::new()),
            woken: Arc::new(Mutex::new(Vec::new())),
            timers: RefCell::new(BinaryHeap::new()),
            timer_seq: Cell::new(0),
            ctx_switches: Cell::new(0),
            current: Cell::new(None),
            live_tasks: Cell::new(0),
            spawned_total: Cell::new(0),
        })
    }

    fn spawn(
        self: &Rc<Self>,
        name: &str,
        priority: Priority,
        future: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        let mut tasks = self.tasks.borrow_mut();
        let index = match self.free.borrow_mut().pop() {
            Some(i) => i,
            None => {
                tasks.push(Slot {
                    gen: 0,
                    state: TaskState::Done,
                    future: None,
                    waker: None,
                    name: Rc::from(""),
                    priority,
                    paused: false,
                    pending_wake: false,
                });
                tasks.len() - 1
            }
        };
        let slot = &mut tasks[index];
        let id = TaskId {
            index,
            gen: slot.gen,
        };
        slot.state = TaskState::Queued;
        slot.future = Some(Box::pin(future));
        slot.name = Rc::from(name);
        slot.priority = priority;
        slot.paused = false;
        slot.pending_wake = false;
        slot.waker = Some(Waker::from(Arc::new(WakeEntry {
            id,
            woken: self.woken.clone(),
        })));
        drop(tasks);
        self.live_tasks.set(self.live_tasks.get() + 1);
        self.spawned_total.set(self.spawned_total.get() + 1);
        match priority {
            Priority::High => self.run_high.borrow_mut().push_back(id),
            Priority::Low => self.run_low.borrow_mut().push_back(id),
        }
        id
    }

    pub(crate) fn now(&self) -> SimTime {
        SimTime(self.clock.get())
    }

    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) {
        self.register_timer_in(at, TimerLane::Normal, waker);
    }

    pub(crate) fn register_timer_late(&self, at: SimTime, waker: Waker) {
        self.register_timer_in(at, TimerLane::Late, waker);
    }

    fn register_timer_in(&self, at: SimTime, lane: TimerLane, waker: Waker) {
        // One shared seq counter is safe for both lanes: ordering is
        // (at, lane, seq), so extra late-lane registrations shift normal
        // timers' seq values without ever reordering them.
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.timers.borrow_mut().push(Reverse(TimerEntry {
            at: at.0,
            lane,
            seq,
            waker,
        }));
    }

    fn drain_woken(&self) {
        let ids: Vec<TaskId> = std::mem::take(&mut *self.woken.lock());
        for id in ids {
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id.index) else {
                continue;
            };
            if slot.gen != id.gen || slot.state != TaskState::Idle {
                continue;
            }
            if slot.paused {
                // Remember the wake-up; `set_paused(.., false)` replays it.
                slot.pending_wake = true;
                continue;
            }
            slot.state = TaskState::Queued;
            let priority = slot.priority;
            drop(tasks);
            match priority {
                Priority::High => self.run_high.borrow_mut().push_back(id),
                Priority::Low => self.run_low.borrow_mut().push_back(id),
            }
        }
    }

    fn next_runnable(&self) -> Option<TaskId> {
        if let Some(id) = self.run_high.borrow_mut().pop_front() {
            return Some(id);
        }
        self.run_low.borrow_mut().pop_front()
    }

    fn poll_task(self: &Rc<Self>, id: TaskId) {
        let (mut future, waker) = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id.index) else {
                return;
            };
            if slot.gen != id.gen || slot.state == TaskState::Done {
                return;
            }
            if slot.paused {
                // Paused after it was already queued: park it again and
                // keep the wake-up for resume time.
                slot.state = TaskState::Idle;
                slot.pending_wake = true;
                return;
            }
            slot.state = TaskState::Running;
            match (slot.future.take(), slot.waker.clone()) {
                (Some(future), Some(waker)) => (future, waker),
                _ => {
                    // A queued task always has both; reaching here means
                    // the slot table is corrupt. Skip the poll rather
                    // than crash the whole simulation.
                    debug_assert!(false, "queued task {id:?} missing future/waker");
                    return;
                }
            }
        };
        self.ctx_switches.set(self.ctx_switches.get() + 1);
        self.current.set(Some(id));
        let mut cx = Context::from_waker(&waker);
        let poll = future.as_mut().poll(&mut cx);
        self.current.set(None);
        let mut tasks = self.tasks.borrow_mut();
        let slot = &mut tasks[id.index];
        match poll {
            Poll::Ready(()) => {
                slot.state = TaskState::Done;
                slot.gen += 1;
                slot.future = None;
                slot.waker = None;
                drop(tasks);
                self.free.borrow_mut().push(id.index);
                self.live_tasks.set(self.live_tasks.get() - 1);
            }
            Poll::Pending => {
                slot.future = Some(future);
                slot.state = TaskState::Idle;
            }
        }
    }

    /// Pauses (`paused = true`) or resumes every live task whose name
    /// starts with `prefix`; returns how many tasks changed state. The
    /// fault-injection primitive behind consumer stalls and box crashes.
    fn set_paused(self: &Rc<Self>, prefix: &str, paused: bool) -> usize {
        let mut requeue: Vec<(TaskId, Priority)> = Vec::new();
        let mut changed = 0;
        {
            let mut tasks = self.tasks.borrow_mut();
            for (index, slot) in tasks.iter_mut().enumerate() {
                if slot.state == TaskState::Done
                    || slot.paused == paused
                    || !slot.name.starts_with(prefix)
                {
                    continue;
                }
                slot.paused = paused;
                changed += 1;
                if !paused && slot.pending_wake && slot.state == TaskState::Idle {
                    slot.pending_wake = false;
                    slot.state = TaskState::Queued;
                    requeue.push((
                        TaskId {
                            index,
                            gen: slot.gen,
                        },
                        slot.priority,
                    ));
                }
            }
        }
        for (id, priority) in requeue {
            match priority {
                Priority::High => self.run_high.borrow_mut().push_back(id),
                Priority::Low => self.run_low.borrow_mut().push_back(id),
            }
        }
        changed
    }

    /// Runs until `deadline`; returns the reason the loop stopped.
    fn run_until(self: &Rc<Self>, deadline: SimTime) -> StopReason {
        let _guard = ContextGuard::enter(self.clone());
        loop {
            self.drain_woken();
            if let Some(id) = self.next_runnable() {
                self.poll_task(id);
                continue;
            }
            // Nothing runnable: advance virtual time to the next timer.
            let next_at = self.timers.borrow().peek().map(|Reverse(t)| t.at);
            match next_at {
                Some(at) if at <= deadline.0 => {
                    debug_assert!(at >= self.clock.get(), "time must not go backwards");
                    self.clock.set(at.max(self.clock.get()));
                    let mut timers = self.timers.borrow_mut();
                    while timers.peek().is_some_and(|Reverse(t)| t.at <= at) {
                        if let Some(Reverse(t)) = timers.pop() {
                            t.waker.wake();
                        }
                    }
                }
                _ => {
                    let idle = next_at.is_none();
                    // Leave the clock at the requested deadline, except for
                    // the open-ended run_until_idle sentinel.
                    if deadline.0 != u64::MAX {
                        self.clock.set(self.clock.get().max(deadline.0));
                    }
                    return if idle {
                        StopReason::Idle
                    } else {
                        StopReason::Deadline
                    };
                }
            }
        }
    }
}

/// Why a call to [`Simulation::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The virtual clock reached the requested deadline with work remaining.
    Deadline,
    /// No task is runnable and no timer is pending: the simulation is
    /// quiescent (every remaining task is blocked on a channel).
    Idle,
}

thread_local! {
    static CURRENT: RefCell<Vec<Rc<Inner>>> = const { RefCell::new(Vec::new()) };
}

struct ContextGuard;

impl ContextGuard {
    fn enter(inner: Rc<Inner>) -> ContextGuard {
        CURRENT.with(|c| c.borrow_mut().push(inner));
        ContextGuard
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

pub(crate) fn with_current<R>(f: impl FnOnce(&Rc<Inner>) -> R) -> R {
    CURRENT.with(|c| {
        let stack = c.borrow();
        match stack.last() {
            Some(inner) => f(inner),
            None => {
                panic!("not inside a simulation: this call is only valid inside a running task")
            }
        }
    })
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// ```
/// use pandora_sim::{Simulation, SimDuration, SimTime};
///
/// let mut sim = Simulation::new();
/// let (tx, rx) = pandora_sim::channel::<u32>();
/// sim.spawn("producer", async move {
///     pandora_sim::delay(SimDuration::from_millis(2)).await;
///     tx.send(7).await.unwrap();
/// });
/// sim.spawn("consumer", async move {
///     let v = rx.recv().await.unwrap();
///     assert_eq!(v, 7);
///     assert_eq!(pandora_sim::now(), SimTime::from_millis(2));
/// });
/// sim.run_until_idle();
/// assert_eq!(sim.now(), SimTime::from_millis(2));
/// ```
pub struct Simulation {
    inner: Rc<Inner>,
    last_deadlock: Option<DeadlockReport>,
}

/// Produced when [`Simulation::run_until_idle`] stops with live tasks:
/// no task is runnable and no timer is pending, so every task named here
/// is blocked forever — a deadlock (typically a channel wait cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Virtual time at which the deadlock was detected.
    pub at: SimTime,
    /// Names of the permanently blocked tasks, in spawn order.
    pub blocked: Vec<String>,
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock at t={:?}: {} task(s) blocked forever: {}",
            self.at,
            self.blocked.len(),
            self.blocked.join(", ")
        )
    }
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at t = 0.
    pub fn new() -> Self {
        Simulation {
            inner: Inner::new(),
            last_deadlock: None,
        }
    }

    /// Spawns a low-priority task.
    pub fn spawn(&mut self, name: &str, future: impl Future<Output = ()> + 'static) -> TaskId {
        self.inner.spawn(name, Priority::Low, future)
    }

    /// Spawns a task at the given priority.
    pub fn spawn_prio(
        &mut self,
        name: &str,
        priority: Priority,
        future: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        self.inner.spawn(name, priority, future)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// Runs the simulation until the clock reaches `deadline` or no work
    /// remains, whichever comes first.
    pub fn run_until(&mut self, deadline: SimTime) -> StopReason {
        self.inner.run_until(deadline)
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) -> StopReason {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }

    /// Runs until quiescent (no runnable task and no pending timer).
    ///
    /// If tasks are still live at quiescence they can never run again —
    /// no timer will ever wake them — so this is a deadlock. The blocked
    /// set is reported on stderr and kept for [`Self::deadlock_report`].
    pub fn run_until_idle(&mut self) -> StopReason {
        let reason = self.run_until(SimTime(u64::MAX));
        self.last_deadlock = if reason == StopReason::Idle && self.live_tasks() > 0 {
            let blocked = self
                .dump_tasks()
                .into_iter()
                .map(|(name, _)| name)
                .collect();
            let report = DeadlockReport {
                at: self.now(),
                blocked,
            };
            eprintln!("pandora-sim: {report}");
            Some(report)
        } else {
            None
        };
        reason
    }

    /// The deadlock found by the most recent [`Self::run_until_idle`],
    /// or `None` if it drained cleanly (or has not run yet).
    pub fn deadlock_report(&self) -> Option<&DeadlockReport> {
        self.last_deadlock.as_ref()
    }

    /// Total number of task polls so far; the simulator's analogue of the
    /// transputer context-switch count (§4.2).
    pub fn context_switches(&self) -> u64 {
        self.inner.ctx_switches.get()
    }

    /// Number of tasks that have been spawned and not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Total number of tasks ever spawned.
    pub fn spawned_total(&self) -> u64 {
        self.inner.spawned_total.get()
    }

    /// Names and states of all live tasks, for deadlock diagnosis.
    pub fn dump_tasks(&self) -> Vec<(String, &'static str)> {
        self.inner
            .tasks
            .borrow()
            .iter()
            .filter(|s| s.state != TaskState::Done)
            .map(|s| {
                let st = match s.state {
                    TaskState::Idle => "blocked",
                    TaskState::Queued => "runnable",
                    TaskState::Running => "running",
                    TaskState::Done => "done",
                };
                (s.name.to_string(), st)
            })
            .collect()
    }

    /// Pauses every live task whose name starts with `prefix` (box task
    /// names share their box's name as a prefix, so a whole box can be
    /// "crashed" this way). Returns how many tasks were paused. Wake-ups
    /// arriving while paused are remembered and replayed on resume.
    pub fn pause_matching(&mut self, prefix: &str) -> usize {
        self.inner.set_paused(prefix, true)
    }

    /// Resumes tasks paused by [`Self::pause_matching`]; pending wake-ups
    /// (channel data, expired timers) fire immediately. Returns how many
    /// tasks were resumed.
    pub fn resume_matching(&mut self, prefix: &str) -> usize {
        self.inner.set_paused(prefix, false)
    }

    /// Handle for spawning from outside a task without `&mut self`.
    pub fn spawner(&self) -> Spawner {
        Spawner {
            inner: Rc::downgrade(&self.inner),
        }
    }
}

/// A cloneable handle that can spawn tasks onto a [`Simulation`].
#[derive(Clone)]
pub struct Spawner {
    inner: std::rc::Weak<Inner>,
}

impl Spawner {
    /// Spawns a low-priority task.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has been dropped.
    pub fn spawn(&self, name: &str, future: impl Future<Output = ()> + 'static) -> TaskId {
        self.spawn_prio(name, Priority::Low, future)
    }

    /// Spawns a task at the given priority.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has been dropped.
    pub fn spawn_prio(
        &self,
        name: &str,
        priority: Priority,
        future: impl Future<Output = ()> + 'static,
    ) -> TaskId {
        let Some(inner) = self.inner.upgrade() else {
            panic!("simulation dropped");
        };
        inner.spawn(name, priority, future)
    }

    /// The simulation's current virtual time — usable from setup code
    /// between runs, unlike the task-context [`now`] free function.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has been dropped.
    pub fn now(&self) -> SimTime {
        let Some(inner) = self.inner.upgrade() else {
            panic!("simulation dropped");
        };
        inner.now()
    }
}

/// Current virtual time. Only valid inside a running simulation.
///
/// # Panics
///
/// Panics when called outside [`Simulation::run_until`] and friends.
pub fn now() -> SimTime {
    with_current(|i| i.now())
}

/// Current virtual time, or `None` when no simulation is running on this
/// thread (e.g. during setup before the first `run_until`).
pub fn try_now() -> Option<SimTime> {
    CURRENT.with(|c| c.borrow().last().map(|i| i.now()))
}

/// Spawns a low-priority task from inside a running task.
pub fn spawn(name: &str, future: impl Future<Output = ()> + 'static) -> TaskId {
    with_current(|i| i.spawn(name, Priority::Low, future))
}

/// Spawns a task at the given priority from inside a running task.
pub fn spawn_prio(
    name: &str,
    priority: Priority,
    future: impl Future<Output = ()> + 'static,
) -> TaskId {
    with_current(|i| i.spawn(name, priority, future))
}

/// Pauses tasks by name prefix from inside a running task — see
/// [`Simulation::pause_matching`]. Only valid inside a simulation.
///
/// # Panics
///
/// Panics when called outside a running simulation.
pub fn pause_matching(prefix: &str) -> usize {
    with_current(|i| i.set_paused(prefix, true))
}

/// Resumes tasks paused by [`pause_matching`] from inside a running task.
///
/// # Panics
///
/// Panics when called outside a running simulation.
pub fn resume_matching(prefix: &str) -> usize {
    with_current(|i| i.set_paused(prefix, false))
}

/// Future that completes at an absolute virtual time.
pub fn delay_until(deadline: SimTime) -> Delay {
    Delay {
        deadline,
        rel: None,
        registered: false,
        late: false,
    }
}

/// Future that completes at an absolute virtual time, *after* every
/// ordinary timer registered for the same instant — even ordinary timers
/// registered later. The sharded runtime's ingress dispatchers sleep on
/// this lane so cross-shard deliveries at an instant always interleave
/// identically with that instant's local work, no matter when the
/// entries physically crossed the thread boundary.
pub fn delay_until_late(deadline: SimTime) -> Delay {
    Delay {
        deadline,
        rel: None,
        registered: false,
        late: true,
    }
}

/// Future that completes after `d` of virtual time.
///
/// The duration is measured from the moment the future is first polled.
pub fn delay(d: SimDuration) -> Delay {
    Delay {
        deadline: SimTime(u64::MAX),
        rel: Some(d),
        registered: false,
        late: false,
    }
}

/// Timer future returned by [`delay`] / [`delay_until`] /
/// [`delay_until_late`].
pub struct Delay {
    deadline: SimTime,
    rel: Option<SimDuration>,
    registered: bool,
    late: bool,
}

impl Delay {
    /// The absolute deadline (resolved at first poll for [`delay`]).
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Delay {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        if let Some(d) = this.rel.take() {
            this.deadline = now() + d;
        }
        let t = with_current(|i| i.now());
        if t >= this.deadline {
            return Poll::Ready(());
        }
        if !this.registered {
            with_current(|i| {
                if this.late {
                    i.register_timer_late(this.deadline, cx.waker().clone())
                } else {
                    i.register_timer(this.deadline, cx.waker().clone())
                }
            });
            this.registered = true;
        }
        Poll::Pending
    }
}

/// Yields once, letting other runnable tasks execute at the same instant.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn paused_task_stops_and_resumes_with_pending_wake() {
        let mut sim = Simulation::new();
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.spawn("worker:pump", async move {
            loop {
                crate::delay(SimDuration::from_millis(1)).await;
                c.set(c.get() + 1);
            }
        });
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(count.get(), 10);
        assert_eq!(sim.pause_matching("worker:"), 1);
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(count.get(), 10, "paused task must not make progress");
        // The 11ms timer fired while paused; resume replays that wake-up.
        assert_eq!(sim.resume_matching("worker:"), 1);
        sim.run_until(SimTime::from_millis(30));
        assert!(
            count.get() >= 19,
            "resumed task caught up to {}",
            count.get()
        );
    }

    #[test]
    fn pause_prefix_selects_by_name() {
        let mut sim = Simulation::new();
        let a = Rc::new(Cell::new(0u64));
        let b = Rc::new(Cell::new(0u64));
        for (name, n) in [("boxa:feed", a.clone()), ("boxb:feed", b.clone())] {
            sim.spawn(name, async move {
                loop {
                    crate::delay(SimDuration::from_millis(1)).await;
                    n.set(n.get() + 1);
                }
            });
        }
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(sim.pause_matching("boxa"), 1);
        sim.run_until(SimTime::from_millis(15));
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 15);
    }

    #[test]
    fn pause_from_inside_a_task() {
        let mut sim = Simulation::new();
        let hits = Rc::new(Cell::new(0u64));
        let h = hits.clone();
        sim.spawn("victim:loop", async move {
            loop {
                crate::delay(SimDuration::from_millis(1)).await;
                h.set(h.get() + 1);
            }
        });
        sim.spawn("driver", async move {
            // Off the victim's tick boundary so the pause instant is
            // unambiguous.
            crate::delay(SimDuration::from_micros(3_500)).await;
            assert_eq!(pause_matching("victim:"), 1);
            crate::delay(SimDuration::from_millis(5)).await;
            assert_eq!(resume_matching("victim:"), 1);
        });
        sim.run_until(SimTime::from_millis(4));
        assert_eq!(hits.get(), 3);
        sim.run_until(SimTime::from_millis(20));
        assert!(hits.get() >= 14, "hits = {}", hits.get());
    }

    #[test]
    fn late_lane_fires_after_all_normal_timers_at_the_instant() {
        let mut sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        // The late timer is registered FIRST (lowest seq): only the lane
        // can push it behind the normal timers at the same instant.
        let o = order.clone();
        sim.spawn("late", async move {
            crate::delay_until_late(SimTime::from_millis(5)).await;
            o.borrow_mut().push("late");
        });
        for name in ["n1", "n2"] {
            let o = order.clone();
            sim.spawn(name, async move {
                crate::delay_until(SimTime::from_millis(5)).await;
                o.borrow_mut().push(name);
            });
        }
        sim.run_until_idle();
        assert_eq!(*order.borrow(), vec!["n1", "n2", "late"]);
    }

    #[test]
    fn late_lane_past_deadline_completes_immediately() {
        let mut sim = Simulation::new();
        let at = Rc::new(Cell::new(0u64));
        let a = at.clone();
        sim.spawn("z", async move {
            crate::delay(SimDuration::from_millis(3)).await;
            crate::delay_until_late(SimTime::from_millis(1)).await;
            a.set(crate::now().as_millis());
        });
        sim.run_until_idle();
        assert_eq!(at.get(), 3);
    }

    #[test]
    fn rendezvous_blocked_task_survives_pause_resume() {
        let mut sim = Simulation::new();
        let (tx, rx) = crate::channel::<u32>();
        let got = Rc::new(Cell::new(0u32));
        let g = got.clone();
        sim.spawn("sink:recv", async move {
            while let Ok(v) = rx.recv().await {
                g.set(g.get() + v);
            }
        });
        sim.spawn("source", async move {
            crate::delay(SimDuration::from_millis(2)).await;
            let _ = tx.send(1).await;
            let _ = tx.send(2).await;
        });
        sim.run_until(SimTime::from_millis(1));
        sim.pause_matching("sink:");
        sim.run_until(SimTime::from_millis(5));
        assert_eq!(got.get(), 0);
        sim.resume_matching("sink:");
        sim.run_until_idle();
        assert_eq!(got.get(), 3);
        assert!(sim.deadlock_report().is_none());
    }
}
