//! Virtual time for the simulation.
//!
//! All simulation time is kept in nanoseconds as a `u64`. Nanosecond
//! resolution comfortably covers the paper's time scales (1 µs transputer
//! timer, 64 µs timestamp resolution, 125 µs samples, 2 ms blocks) while
//! still allowing byte-accurate modelling of link transfer times
//! (1 byte at 20 Mbit/s = 400 ns).

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub const fn mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Divides the duration by an integer divisor.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub const fn div(self, k: u64) -> Self {
        SimDuration(self.0 / k)
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(125).as_nanos(), 125_000);
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(3)).as_millis(), 12);
        assert_eq!(t.since(SimTime::from_millis(20)), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_millis(2).mul(12).as_millis(), 24);
        assert_eq!(SimDuration::from_millis(24).div(12).as_millis(), 2);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.000_000_001_4).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(2e-3).as_millis(), 2);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(400)), "400ns");
        assert_eq!(format!("{}", SimDuration::from_micros(125)), "125.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(8)), "8.000s");
    }

    #[test]
    fn saturating_behaviour() {
        let t = SimTime(u64::MAX);
        assert_eq!((t + SimDuration::from_secs(1)).0, u64::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
    }
}
