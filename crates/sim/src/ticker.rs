//! Periodic tick sources — the transputer event pin.
//!
//! §3.5: "Every 2ms, the Transputer event pin is signalled, and the code
//! notes that another 16 bytes (a block) are in the fifo." A [`ticker`]
//! models this: a hardware-driven periodic signal feeding a bounded FIFO.
//! If the consumer cannot keep up, ticks overflow and are counted — the
//! hardware analogue of codec FIFO overrun, i.e. data lost at the source.

use std::cell::Cell;
use std::rc::Rc;

use crate::channel::{buffered, Receiver, TrySendError};
use crate::executor::{delay_until, Priority, Spawner};
use crate::time::{SimDuration, SimTime};

/// A tick delivered by a [`ticker`]; carries its nominal firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick {
    /// The virtual time at which the tick fired.
    pub at: SimTime,
    /// Ordinal of the tick, starting at 0.
    pub seq: u64,
}

/// Handle exposing overrun statistics of a ticker.
#[derive(Clone)]
pub struct TickerHandle {
    overruns: Rc<Cell<u64>>,
}

impl TickerHandle {
    /// Ticks dropped because the consumer's FIFO was full.
    pub fn overruns(&self) -> u64 {
        self.overruns.get()
    }
}

/// Spawns a periodic tick source.
///
/// * `period` — tick interval;
/// * `depth` — FIFO depth in ticks before overrun (hardware FIFO size);
/// * `drift` — relative clock drift of the driving crystal (e.g. `1e-5`);
///   positive means the local clock runs fast so ticks arrive early in
///   global time.
///
/// The ticker runs at high priority like the hardware it models: it never
/// waits for the consumer, it just drops (and counts) on overflow.
pub fn ticker(
    spawner: &Spawner,
    name: &str,
    period: SimDuration,
    depth: usize,
    drift: f64,
) -> (Receiver<Tick>, TickerHandle) {
    let (tx, rx) = buffered::<Tick>(depth.max(1));
    let overruns = Rc::new(Cell::new(0u64));
    let handle = TickerHandle {
        overruns: overruns.clone(),
    };
    let name = format!("ticker:{name}");
    spawner.spawn_prio(&name, Priority::High, async move {
        let start = crate::now();
        let mut seq: u64 = 0;
        loop {
            seq += 1;
            let at = crate::link::drifted_tick(start, period, drift, seq);
            delay_until(at).await;
            match tx.try_send(Tick { at, seq: seq - 1 }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => overruns.set(overruns.get() + 1),
                Err(TrySendError::Closed(_)) => return,
            }
        }
    });
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use std::cell::RefCell;

    #[test]
    fn ticks_arrive_on_cadence() {
        let mut sim = Simulation::new();
        let (rx, handle) = ticker(&sim.spawner(), "codec", SimDuration::from_millis(2), 8, 0.0);
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("consumer", async move {
            for _ in 0..5 {
                let tick = rx.recv().await.unwrap();
                t.borrow_mut().push(tick.at.as_millis());
            }
        });
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*times.borrow(), vec![2, 4, 6, 8, 10]);
        assert_eq!(handle.overruns(), 0);
    }

    #[test]
    fn slow_consumer_overruns() {
        let mut sim = Simulation::new();
        let (rx, handle) = ticker(&sim.spawner(), "codec", SimDuration::from_millis(2), 2, 0.0);
        sim.spawn("consumer", async move {
            loop {
                crate::delay(SimDuration::from_millis(20)).await;
                if rx.recv().await.is_err() {
                    return;
                }
            }
        });
        sim.run_until(SimTime::from_secs(1));
        // 500 ticks generated, consumer absorbs ~50; FIFO depth 2.
        assert!(handle.overruns() > 400, "overruns = {}", handle.overruns());
    }

    #[test]
    fn drifting_ticker_diverges() {
        let mut sim = Simulation::new();
        // A fast crystal at +1e-4 gains one period every 10^4 periods.
        let (rx, _h) = ticker(
            &sim.spawner(),
            "fast",
            SimDuration::from_millis(2),
            1 << 20,
            1e-4,
        );
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.spawn("consumer", async move {
            while rx.recv().await.is_ok() {
                c.set(c.get() + 1);
            }
        });
        sim.run_until(SimTime::from_secs(100));
        // Nominal 50_000 ticks in 100s; the fast clock yields ~5 extra.
        let n = count.get();
        assert!((50_004..=50_006).contains(&n), "ticks = {n}");
    }
}
