//! Periodic tick sources — the transputer event pin.
//!
//! §3.5: "Every 2ms, the Transputer event pin is signalled, and the code
//! notes that another 16 bytes (a block) are in the fifo." A [`ticker`]
//! models this: a hardware-driven periodic signal feeding a bounded FIFO.
//! If the consumer cannot keep up, ticks overflow and are counted — the
//! hardware analogue of codec FIFO overrun, i.e. data lost at the source.

use std::cell::Cell;
use std::rc::Rc;

use crate::channel::{buffered, Receiver, TrySendError};
use crate::executor::{delay_until, Priority, Spawner};
use crate::time::{SimDuration, SimTime};

/// A tick delivered by a [`ticker`]; carries its nominal firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tick {
    /// The virtual time at which the tick fired.
    pub at: SimTime,
    /// Ordinal of the tick, starting at 0.
    pub seq: u64,
}

/// Handle exposing overrun statistics of a ticker, plus runtime control
/// over its crystal for fault injection: drift changes and clock steps.
#[derive(Clone)]
pub struct TickerHandle {
    overruns: Rc<Cell<u64>>,
    drift: Rc<Cell<f64>>,
    step_ns: Rc<Cell<i64>>,
}

impl TickerHandle {
    /// Ticks dropped because the consumer's FIFO was full.
    pub fn overruns(&self) -> u64 {
        self.overruns.get()
    }

    /// Changes the crystal's relative drift from the next tick onward.
    /// The cadence re-anchors at the last tick, so already-elapsed time is
    /// not re-interpreted — only future periods stretch or shrink.
    pub fn set_drift(&self, drift: f64) {
        self.drift.set(drift);
    }

    /// Current relative drift of the driving crystal.
    pub fn drift(&self) -> f64 {
        self.drift.get()
    }

    /// Steps the local clock forward by `by`: every future tick fires that
    /// much earlier, so ticks already due burst out immediately — the
    /// "someone set the clock" fault of §3.7.2.
    pub fn step_forward(&self, by: SimDuration) {
        let ns = i64::try_from(by.as_nanos()).unwrap_or(i64::MAX);
        self.step_ns.set(self.step_ns.get().saturating_add(ns));
    }

    /// Steps the local clock backward by `by`: a gap opens before the next
    /// tick, as if the crystal froze for that long.
    pub fn step_backward(&self, by: SimDuration) {
        let ns = i64::try_from(by.as_nanos()).unwrap_or(i64::MAX);
        self.step_ns.set(self.step_ns.get().saturating_sub(ns));
    }
}

/// Spawns a periodic tick source.
///
/// * `period` — tick interval;
/// * `depth` — FIFO depth in ticks before overrun (hardware FIFO size);
/// * `drift` — relative clock drift of the driving crystal (e.g. `1e-5`);
///   positive means the local clock runs fast so ticks arrive early in
///   global time.
///
/// The ticker runs at high priority like the hardware it models: it never
/// waits for the consumer, it just drops (and counts) on overflow.
pub fn ticker(
    spawner: &Spawner,
    name: &str,
    period: SimDuration,
    depth: usize,
    drift: f64,
) -> (Receiver<Tick>, TickerHandle) {
    let (tx, rx) = buffered::<Tick>(depth.max(1));
    let overruns = Rc::new(Cell::new(0u64));
    let drift_cell = Rc::new(Cell::new(drift));
    let step_cell = Rc::new(Cell::new(0i64));
    let handle = TickerHandle {
        overruns: overruns.clone(),
        drift: drift_cell.clone(),
        step_ns: step_cell.clone(),
    };
    let name = format!("ticker:{name}");
    spawner.spawn_prio(&name, Priority::High, async move {
        let start = crate::now();
        // The cadence is anchored: tick n fires at
        // `drifted_tick(anchor, period, drift, n - anchor_seq)`. Drift
        // changes and clock steps re-anchor rather than rewrite history,
        // so with the handle untouched this is the original schedule.
        let mut anchor = start;
        let mut anchor_seq: u64 = 0;
        let mut cur_drift = drift_cell.get();
        let mut last_at = start;
        let mut seq: u64 = 0;
        loop {
            seq += 1;
            let d = drift_cell.get();
            if d != cur_drift {
                anchor = last_at;
                anchor_seq = seq - 1;
                cur_drift = d;
            }
            let s = step_cell.replace(0);
            if s != 0 {
                // Re-anchor at the last tick first, then shift: a forward
                // step makes future ticks earlier (ticks now in the past
                // burst out back-to-back), a backward step opens a gap.
                anchor = last_at;
                anchor_seq = seq - 1;
                anchor = if s > 0 {
                    SimTime(anchor.0.saturating_sub(s as u64))
                } else {
                    SimTime(anchor.0.saturating_add(s.unsigned_abs()))
                };
            }
            let at = crate::link::drifted_tick(anchor, period, cur_drift, seq - anchor_seq);
            last_at = at;
            delay_until(at).await;
            match tx.try_send(Tick { at, seq: seq - 1 }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => overruns.set(overruns.get() + 1),
                Err(TrySendError::Closed(_)) => return,
            }
        }
    });
    (rx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use std::cell::RefCell;

    #[test]
    fn ticks_arrive_on_cadence() {
        let mut sim = Simulation::new();
        let (rx, handle) = ticker(&sim.spawner(), "codec", SimDuration::from_millis(2), 8, 0.0);
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("consumer", async move {
            for _ in 0..5 {
                let tick = rx.recv().await.unwrap();
                t.borrow_mut().push(tick.at.as_millis());
            }
        });
        sim.run_until(SimTime::from_millis(20));
        assert_eq!(*times.borrow(), vec![2, 4, 6, 8, 10]);
        assert_eq!(handle.overruns(), 0);
    }

    #[test]
    fn slow_consumer_overruns() {
        let mut sim = Simulation::new();
        let (rx, handle) = ticker(&sim.spawner(), "codec", SimDuration::from_millis(2), 2, 0.0);
        sim.spawn("consumer", async move {
            loop {
                crate::delay(SimDuration::from_millis(20)).await;
                if rx.recv().await.is_err() {
                    return;
                }
            }
        });
        sim.run_until(SimTime::from_secs(1));
        // 500 ticks generated, consumer absorbs ~50; FIFO depth 2.
        assert!(handle.overruns() > 400, "overruns = {}", handle.overruns());
    }

    #[test]
    fn mid_run_drift_change_reanchors() {
        let mut sim = Simulation::new();
        let (rx, handle) = ticker(
            &sim.spawner(),
            "codec",
            SimDuration::from_millis(2),
            1 << 20,
            0.0,
        );
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.spawn("consumer", async move {
            while rx.recv().await.is_ok() {
                c.set(c.get() + 1);
            }
        });
        sim.run_until(crate::SimTime::from_secs(10));
        assert_eq!(count.get(), 5_000);
        // Crystal now runs 1% fast: ~50 extra ticks over the next 10s.
        handle.set_drift(1e-2);
        sim.run_until(crate::SimTime::from_secs(20));
        let n = count.get();
        assert!((10_045..=10_055).contains(&n), "ticks = {n}");
    }

    #[test]
    fn clock_step_forward_bursts_ticks() {
        let mut sim = Simulation::new();
        let (rx, handle) = ticker(
            &sim.spawner(),
            "codec",
            SimDuration::from_millis(2),
            1 << 20,
            0.0,
        );
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.spawn("consumer", async move {
            while rx.recv().await.is_ok() {
                c.set(c.get() + 1);
            }
        });
        sim.run_until(crate::SimTime::from_secs(1));
        assert_eq!(count.get(), 500);
        // Clock leaps 100ms ahead: 50 ticks burst out, cadence continues.
        handle.step_forward(SimDuration::from_millis(100));
        sim.run_until(crate::SimTime::from_secs(2));
        assert_eq!(count.get(), 1_050);
        // And a backward step opens a matching gap.
        handle.step_backward(SimDuration::from_millis(100));
        sim.run_until(crate::SimTime::from_secs(3));
        assert_eq!(count.get(), 1_500);
    }

    #[test]
    fn drifting_ticker_diverges() {
        let mut sim = Simulation::new();
        // A fast crystal at +1e-4 gains one period every 10^4 periods.
        let (rx, _h) = ticker(
            &sim.spawner(),
            "fast",
            SimDuration::from_millis(2),
            1 << 20,
            1e-4,
        );
        let count = Rc::new(Cell::new(0u64));
        let c = count.clone();
        sim.spawn("consumer", async move {
            while rx.recv().await.is_ok() {
                c.set(c.get() + 1);
            }
        });
        sim.run_until(SimTime::from_secs(100));
        // Nominal 50_000 ticks in 100s; the fast clock yields ~5 extra.
        let n = count.get();
        assert!((50_004..=50_006).contains(&n), "ticks = {n}");
    }
}
