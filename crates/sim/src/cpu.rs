//! Virtual CPU resources — the stand-in for a transputer's processing time.
//!
//! Pandora's overload behaviour hinges on finite CPU: "if the transputer has
//! too few CPU cycles to handle the data, then the output processes will
//! take priority, and the input side will be held up" (§3.7.1). A [`Cpu`]
//! models one transputer: tasks claim it for a cost in virtual time; claims
//! are granted non-preemptively in priority order (then FIFO), and each
//! grant pays a context-switch surcharge (§3.1: "a context switch can be
//! accomplished in less than 1 µs").
//!
//! The real transputer preempts low-priority processes; this model is
//! non-preemptive. At the 2 ms block granularity of the audio code and the
//! µs-scale costs used in the experiments the difference is below the
//! resolution of every reproduced figure (see DESIGN.md §5).

use std::cell::{Cell, RefCell};
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::executor::{now, with_current};
use crate::time::{SimDuration, SimTime};

/// Priority of a CPU claim; larger values are served first.
pub type ClaimPriority = u8;

/// Default claim priority for ordinary work.
pub const PRIO_NORMAL: ClaimPriority = 8;
/// Priority used by output-side processes ("output processes have priority").
pub const PRIO_OUTPUT: ClaimPriority = 12;
/// Priority used by command handling (Principle 4).
pub const PRIO_COMMAND: ClaimPriority = 15;

struct Waiter {
    priority: ClaimPriority,
    seq: u64,
    granted: Rc<Cell<bool>>,
    cancelled: Rc<Cell<bool>>,
    waker: Rc<RefCell<Option<Waker>>>,
}

impl PartialEq for Waiter {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Waiter {}
impl PartialOrd for Waiter {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Waiter {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier arrival (lower seq).
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct CpuState {
    name: String,
    switch_cost: SimDuration,
    running: Cell<bool>,
    queue: RefCell<BinaryHeap<Waiter>>,
    seq: Cell<u64>,
    busy: Cell<u64>,
    claims: Cell<u64>,
    switches: Cell<u64>,
}

/// A virtual CPU granting exclusive execution time to claiming tasks.
///
/// # Examples
///
/// ```
/// use pandora_sim::{Cpu, Simulation, SimDuration, SimTime};
///
/// let mut sim = Simulation::new();
/// let cpu = Cpu::new("audio-transputer", SimDuration::from_nanos(700));
/// let cpu2 = cpu.clone();
/// sim.spawn("worker", async move {
///     cpu2.claim(SimDuration::from_micros(100)).await;
///     // 100us of work plus the 700ns context switch have elapsed.
///     assert_eq!(pandora_sim::now(), SimTime::from_nanos(100_700));
/// });
/// sim.run_until_idle();
/// ```
#[derive(Clone)]
pub struct Cpu {
    state: Rc<CpuState>,
}

impl Cpu {
    /// Creates a CPU with the given per-claim context-switch cost.
    pub fn new(name: &str, switch_cost: SimDuration) -> Self {
        Cpu {
            state: Rc::new(CpuState {
                name: name.to_string(),
                switch_cost,
                running: Cell::new(false),
                queue: RefCell::new(BinaryHeap::new()),
                seq: Cell::new(0),
                busy: Cell::new(0),
                claims: Cell::new(0),
                switches: Cell::new(0),
            }),
        }
    }

    /// The CPU's diagnostic name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Claims the CPU for `cost` at normal priority.
    pub fn claim(&self, cost: SimDuration) -> Claim {
        self.claim_prio(cost, PRIO_NORMAL)
    }

    /// Claims the CPU for `cost` at the given priority.
    ///
    /// Completes once the work has been executed. Grants are
    /// non-preemptive: a grant in progress finishes before the next waiter
    /// (highest priority first) is served.
    pub fn claim_prio(&self, cost: SimDuration, priority: ClaimPriority) -> Claim {
        Claim {
            cpu: self.state.clone(),
            cost,
            priority,
            state: ClaimState::Init,
        }
    }

    /// Total virtual time this CPU has spent executing claims
    /// (including context-switch surcharges).
    pub fn busy_time(&self) -> SimDuration {
        SimDuration(self.state.busy.get())
    }

    /// Number of claims fully executed.
    pub fn claims(&self) -> u64 {
        self.state.claims.get()
    }

    /// Number of context switches charged (one per executed claim).
    pub fn switches(&self) -> u64 {
        self.state.switches.get()
    }

    /// Utilisation over `elapsed`: busy time divided by the window.
    pub fn utilisation(&self, elapsed: SimDuration) -> f64 {
        if elapsed.as_nanos() == 0 {
            0.0
        } else {
            self.busy_time().as_nanos() as f64 / elapsed.as_nanos() as f64
        }
    }

    /// Number of claims currently waiting for the CPU.
    pub fn queue_len(&self) -> usize {
        self.state.queue.borrow().len()
    }
}

impl CpuState {
    /// Hands the CPU to the next live waiter, or frees it.
    fn release(&self) {
        loop {
            let next = self.queue.borrow_mut().pop();
            match next {
                Some(w) if w.cancelled.get() => continue,
                Some(w) => {
                    w.granted.set(true);
                    if let Some(wk) = w.waker.borrow_mut().take() {
                        wk.wake();
                    }
                    // The CPU stays "running": it was handed over directly so
                    // no newcomer can barge in ahead of the woken waiter.
                    return;
                }
                None => {
                    self.running.set(false);
                    return;
                }
            }
        }
    }
}

enum ClaimState {
    Init,
    Queued {
        granted: Rc<Cell<bool>>,
        cancelled: Rc<Cell<bool>>,
        waker: Rc<RefCell<Option<Waker>>>,
    },
    Running {
        done_at: SimTime,
        registered: bool,
    },
    Finished,
}

/// Future returned by [`Cpu::claim`] / [`Cpu::claim_prio`].
pub struct Claim {
    cpu: Rc<CpuState>,
    cost: SimDuration,
    priority: ClaimPriority,
    state: ClaimState,
}

impl Claim {
    fn start_running(&mut self) {
        let start = now();
        let done_at = start + self.cpu.switch_cost + self.cost;
        self.cpu
            .busy
            .set(self.cpu.busy.get() + (done_at - start).as_nanos());
        self.cpu.switches.set(self.cpu.switches.get() + 1);
        self.state = ClaimState::Running {
            done_at,
            registered: false,
        };
    }
}

impl Future for Claim {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        loop {
            match &mut this.state {
                ClaimState::Init => {
                    if this.cpu.running.get() {
                        let granted = Rc::new(Cell::new(false));
                        let cancelled = Rc::new(Cell::new(false));
                        let waker = Rc::new(RefCell::new(Some(cx.waker().clone())));
                        let seq = this.cpu.seq.get();
                        this.cpu.seq.set(seq + 1);
                        this.cpu.queue.borrow_mut().push(Waiter {
                            priority: this.priority,
                            seq,
                            granted: granted.clone(),
                            cancelled: cancelled.clone(),
                            waker: waker.clone(),
                        });
                        this.state = ClaimState::Queued {
                            granted,
                            cancelled,
                            waker,
                        };
                        return Poll::Pending;
                    }
                    this.cpu.running.set(true);
                    this.start_running();
                }
                ClaimState::Queued { granted, waker, .. } => {
                    if !granted.get() {
                        *waker.borrow_mut() = Some(cx.waker().clone());
                        return Poll::Pending;
                    }
                    this.start_running();
                }
                ClaimState::Running {
                    done_at,
                    registered,
                } => {
                    if now() >= *done_at {
                        this.state = ClaimState::Finished;
                        this.cpu.claims.set(this.cpu.claims.get() + 1);
                        this.cpu.release();
                        return Poll::Ready(());
                    }
                    if !*registered {
                        let d = *done_at;
                        with_current(|i| i.register_timer(d, cx.waker().clone()));
                        *registered = true;
                    }
                    return Poll::Pending;
                }
                ClaimState::Finished => return Poll::Ready(()),
            }
        }
    }
}

impl Drop for Claim {
    fn drop(&mut self) {
        match &self.state {
            ClaimState::Queued {
                granted, cancelled, ..
            } => {
                if granted.get() {
                    // Granted but never polled to Running: pass it on.
                    self.cpu.release();
                } else {
                    cancelled.set(true);
                }
            }
            ClaimState::Running { .. } => {
                // Cancelled mid-execution: the time was already accounted;
                // free the CPU for the next waiter.
                self.cpu.release();
            }
            ClaimState::Init | ClaimState::Finished => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn single_claim_advances_time_by_cost_plus_switch() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("t", SimDuration::from_nanos(500));
        let c = cpu.clone();
        sim.spawn("w", async move {
            c.claim(SimDuration::from_micros(10)).await;
            assert_eq!(now(), SimTime::from_nanos(10_500));
        });
        sim.run_until_idle();
        assert_eq!(cpu.claims(), 1);
        assert_eq!(cpu.busy_time(), SimDuration::from_nanos(10_500));
    }

    #[test]
    fn claims_serialize() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("t", SimDuration::ZERO);
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for i in 0..3 {
            let c = cpu.clone();
            let l = log.clone();
            sim.spawn(&format!("w{i}"), async move {
                c.claim(SimDuration::from_micros(100)).await;
                l.borrow_mut().push((i, now().as_micros()));
            });
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec![(0, 100), (1, 200), (2, 300)]);
        assert_eq!(cpu.utilisation(SimDuration::from_micros(300)), 1.0);
    }

    #[test]
    fn higher_priority_served_first() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("t", SimDuration::ZERO);
        let log: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        {
            let c = cpu.clone();
            let l = log.clone();
            sim.spawn("hog", async move {
                c.claim(SimDuration::from_micros(100)).await;
                l.borrow_mut().push("hog");
            });
        }
        {
            let c = cpu.clone();
            let l = log.clone();
            sim.spawn("low", async move {
                crate::yield_now().await; // Let the hog grab the CPU first.
                c.claim_prio(SimDuration::from_micros(10), PRIO_NORMAL)
                    .await;
                l.borrow_mut().push("low");
            });
        }
        {
            let c = cpu.clone();
            let l = log.clone();
            sim.spawn("output", async move {
                crate::yield_now().await;
                c.claim_prio(SimDuration::from_micros(10), PRIO_OUTPUT)
                    .await;
                l.borrow_mut().push("output");
            });
        }
        sim.run_until_idle();
        // Output-priority claim jumps the queue ahead of the earlier low one.
        assert_eq!(*log.borrow(), ["hog", "output", "low"]);
    }

    #[test]
    fn fifo_within_same_priority() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("t", SimDuration::ZERO);
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for i in 0..4 {
            let c = cpu.clone();
            let l = log.clone();
            sim.spawn(&format!("w{i}"), async move {
                c.claim(SimDuration::from_micros(1)).await;
                l.borrow_mut().push(i);
            });
        }
        sim.run_until_idle();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn overload_delays_work_proportionally() {
        // Ask for 2x the CPU the window provides: completion time doubles.
        let mut sim = Simulation::new();
        let cpu = Cpu::new("t", SimDuration::ZERO);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        for i in 0..20 {
            let c = cpu.clone();
            let d = done.clone();
            sim.spawn(&format!("w{i}"), async move {
                c.claim(SimDuration::from_millis(1)).await;
                d.set(now());
            });
        }
        sim.run_until_idle();
        assert_eq!(done.get(), SimTime::from_millis(20));
    }

    #[test]
    fn utilisation_fraction() {
        let mut sim = Simulation::new();
        let cpu = Cpu::new("t", SimDuration::ZERO);
        let c = cpu.clone();
        sim.spawn("w", async move {
            c.claim(SimDuration::from_millis(2)).await;
            crate::delay(SimDuration::from_millis(6)).await;
        });
        sim.run_until_idle();
        assert!((cpu.utilisation(SimDuration::from_millis(8)) - 0.25).abs() < 1e-9);
    }
}
