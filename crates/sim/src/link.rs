//! Bandwidth-limited point-to-point links.
//!
//! Models Inmos transputer links and the memory-mapped FIFOs of the
//! Pandora boards (§1.1, §3.1): serial, point-to-point, DMA-driven, with
//! hardware flow control. A message of *n* bytes occupies the link for
//! `n × 8 / rate`; while a transfer is in progress (or its recipient has
//! not yet consumed the previous message) the next sender is held back —
//! this back-pressure is how overload propagates toward the source
//! (Principle 5's failure mode, handled by decoupling buffers).

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::channel::{buffered, Receiver, SendError, Sender};
use crate::executor::{delay, spawn_prio, Priority, Spawner};
use crate::time::{SimDuration, SimTime};

/// Items that know their size on the wire.
pub trait WireSize {
    /// Number of bytes this value occupies on a link.
    fn wire_bytes(&self) -> usize;
}

impl WireSize for Vec<u8> {
    fn wire_bytes(&self) -> usize {
        self.len()
    }
}

impl WireSize for &[u8] {
    fn wire_bytes(&self) -> usize {
        self.len()
    }
}

/// Configuration of a [`link`].
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Transfer rate in bits per second (e.g. `20_000_000` for the 20 Mbit/s
    /// audio link of figure 1.2).
    pub bits_per_sec: u64,
    /// Fixed per-message latency added after the transfer completes.
    pub latency: SimDuration,
    /// Diagnostic name.
    pub name: &'static str,
}

impl LinkConfig {
    /// A link at `bits_per_sec` with no fixed latency.
    pub fn new(name: &'static str, bits_per_sec: u64) -> Self {
        LinkConfig {
            bits_per_sec,
            latency: SimDuration::ZERO,
            name,
        }
    }

    /// Sets the fixed per-message latency.
    pub fn with_latency(mut self, latency: SimDuration) -> Self {
        self.latency = latency;
        self
    }

    /// Time to clock `bytes` through this link.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        SimDuration(((bytes as u128 * 8 * 1_000_000_000) / self.bits_per_sec as u128) as u64)
    }
}

/// The sending end of a link.
pub struct LinkSender<T> {
    tx: Sender<(T, usize)>,
}

impl<T> Clone for LinkSender<T> {
    fn clone(&self) -> Self {
        LinkSender {
            tx: self.tx.clone(),
        }
    }
}

impl<T: WireSize> LinkSender<T> {
    /// Sends a value whose size comes from [`WireSize`].
    ///
    /// Completes when the link engine has accepted the message — i.e. when
    /// the link is free of the previous message (DMA hand-off semantics).
    pub async fn send(&self, value: T) -> Result<(), SendError> {
        let bytes = value.wire_bytes();
        self.send_sized(value, bytes).await
    }
}

impl<T> LinkSender<T> {
    /// Sends a value with an explicit wire size in bytes.
    pub async fn send_sized(&self, value: T, bytes: usize) -> Result<(), SendError> {
        self.tx.send((value, bytes)).await
    }

    /// Number of messages handed to the link engine but not yet delivered.
    pub fn backlog(&self) -> usize {
        self.tx.len()
    }

    /// Returns `true` if the receiving end has been dropped.
    pub fn is_closed(&self) -> bool {
        self.tx.is_closed()
    }
}

/// Creates a bandwidth-limited link inside the simulation.
///
/// Returns the sending end and the delivery channel. A pump task (spawned
/// at high priority, like link DMA engines that run independently of the
/// CPUs) accepts one message at a time, waits the transfer time, then
/// performs a rendezvous delivery: if the receiver is slow the link stays
/// occupied, blocking subsequent senders.
pub fn link<T: 'static>(spawner: &Spawner, config: LinkConfig) -> (LinkSender<T>, Receiver<T>) {
    // Capacity 1: one message may be handed to the DMA engine while a
    // previous transfer is still delivering; the *second* hand-off blocks.
    let (tx, pump_rx) = buffered::<(T, usize)>(1);
    let (out_tx, out_rx) = crate::channel::channel::<T>();
    if config.latency.as_nanos() == 0 {
        // Pure serial link (in-box Inmos links and FIFOs): the writer is
        // blocked until the receiver has consumed — exact back-pressure.
        spawner.spawn_prio(
            &format!("link:{}", config.name),
            Priority::High,
            async move {
                while let Ok((value, bytes)) = pump_rx.recv().await {
                    delay(config.transfer_time(bytes)).await;
                    if out_tx.send(value).await.is_err() {
                        return;
                    }
                }
            },
        );
    } else {
        // A long line: serialisation (wire occupancy) and propagation are
        // separate stages so latency does not reduce throughput. The
        // in-flight window is bounded, so a stalled receiver still
        // back-pressures the sender eventually.
        let (prop_tx, prop_rx) = buffered::<(crate::time::SimTime, T)>(256);
        spawner.spawn_prio(
            &format!("link:{}", config.name),
            Priority::High,
            async move {
                while let Ok((value, bytes)) = pump_rx.recv().await {
                    delay(config.transfer_time(bytes)).await;
                    let due = crate::executor::now() + config.latency;
                    if prop_tx.send((due, value)).await.is_err() {
                        return;
                    }
                }
            },
        );
        spawner.spawn_prio(
            &format!("link:{}:prop", config.name),
            Priority::High,
            async move {
                while let Ok((due, value)) = prop_rx.recv().await {
                    crate::executor::delay_until(due).await;
                    if out_tx.send(value).await.is_err() {
                        return;
                    }
                }
            },
        );
    }
    (LinkSender { tx }, out_rx)
}

struct LinkCtlState {
    up: Cell<bool>,
    rate_permille: Cell<u64>,
    wakers: RefCell<Vec<Waker>>,
    downs: Cell<u64>,
}

/// Runtime control handle for a [`link_controlled`] link.
///
/// Fault injection uses it to flap the link (`set_up`) or collapse its
/// effective bandwidth (`set_rate_permille`). While the link is down no new
/// transfer starts and no delivery completes; traffic already handed to the
/// engine queues behind the outage and drains on recovery, exactly the
/// back-pressure path Principle 5's decoupling buffers exist to absorb.
#[derive(Clone)]
pub struct LinkControl {
    state: Rc<LinkCtlState>,
}

impl LinkControl {
    fn new() -> Self {
        LinkControl {
            state: Rc::new(LinkCtlState {
                up: Cell::new(true),
                rate_permille: Cell::new(1000),
                wakers: RefCell::new(Vec::new()),
                downs: Cell::new(0),
            }),
        }
    }

    /// Takes the link down (`false`) or brings it back up (`true`).
    pub fn set_up(&self, up: bool) {
        let was = self.state.up.replace(up);
        if up && !was {
            for w in self.state.wakers.borrow_mut().drain(..) {
                w.wake();
            }
        } else if !up && was {
            self.state.downs.set(self.state.downs.get() + 1);
        }
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.state.up.get()
    }

    /// Scales the effective bandwidth: 1000 is nominal, 250 collapses the
    /// link to a quarter rate. Clamped to at least 1 (never free-running).
    pub fn set_rate_permille(&self, permille: u64) {
        self.state.rate_permille.set(permille.max(1));
    }

    /// Current bandwidth scale factor in permille of nominal.
    pub fn rate_permille(&self) -> u64 {
        self.state.rate_permille.get()
    }

    /// Number of up→down transitions so far.
    pub fn flaps(&self) -> u64 {
        self.state.downs.get()
    }

    fn scaled(&self, d: SimDuration) -> SimDuration {
        let p = self.state.rate_permille.get();
        if p == 1000 {
            d
        } else {
            SimDuration((d.as_nanos() as u128 * 1000 / p as u128) as u64)
        }
    }

    fn wait_up(&self) -> WaitUp {
        WaitUp {
            state: self.state.clone(),
        }
    }
}

struct WaitUp {
    state: Rc<LinkCtlState>,
}

impl Future for WaitUp {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.state.up.get() {
            Poll::Ready(())
        } else {
            self.state.wakers.borrow_mut().push(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Like [`link`], but returns a [`LinkControl`] so a fault plan can flap
/// the link or collapse its bandwidth mid-run.
///
/// With the control untouched the link behaves identically to [`link`]:
/// the up-check resolves immediately and the nominal rate is unscaled, so
/// schedules (and determinism) are unchanged.
pub fn link_controlled<T: 'static>(
    spawner: &Spawner,
    config: LinkConfig,
) -> (LinkSender<T>, Receiver<T>, LinkControl) {
    let ctrl = LinkControl::new();
    let (tx, pump_rx) = buffered::<(T, usize)>(1);
    let (out_tx, out_rx) = crate::channel::channel::<T>();
    let c = ctrl.clone();
    if config.latency.as_nanos() == 0 {
        spawner.spawn_prio(
            &format!("link:{}", config.name),
            Priority::High,
            async move {
                while let Ok((value, bytes)) = pump_rx.recv().await {
                    c.wait_up().await;
                    delay(c.scaled(config.transfer_time(bytes))).await;
                    c.wait_up().await;
                    if out_tx.send(value).await.is_err() {
                        return;
                    }
                }
            },
        );
    } else {
        let (prop_tx, prop_rx) = buffered::<(crate::time::SimTime, T)>(256);
        spawner.spawn_prio(
            &format!("link:{}", config.name),
            Priority::High,
            async move {
                while let Ok((value, bytes)) = pump_rx.recv().await {
                    c.wait_up().await;
                    delay(c.scaled(config.transfer_time(bytes))).await;
                    c.wait_up().await;
                    let due = crate::executor::now() + config.latency;
                    if prop_tx.send((due, value)).await.is_err() {
                        return;
                    }
                }
            },
        );
        spawner.spawn_prio(
            &format!("link:{}:prop", config.name),
            Priority::High,
            async move {
                while let Ok((due, value)) = prop_rx.recv().await {
                    crate::executor::delay_until(due).await;
                    if out_tx.send(value).await.is_err() {
                        return;
                    }
                }
            },
        );
    }
    (LinkSender { tx }, out_rx, ctrl)
}

/// Creates a link from inside a running task (zero-latency serial form).
pub fn link_here<T: 'static>(config: LinkConfig) -> (LinkSender<T>, Receiver<T>) {
    let (tx, pump_rx) = buffered::<(T, usize)>(1);
    let (out_tx, out_rx) = crate::channel::channel::<T>();
    spawn_prio(
        &format!("link:{}", config.name),
        Priority::High,
        async move {
            while let Ok((value, bytes)) = pump_rx.recv().await {
                delay(config.transfer_time(bytes) + config.latency).await;
                if out_tx.send(value).await.is_err() {
                    return;
                }
            }
        },
    );
    (LinkSender { tx }, out_rx)
}

/// Helper: the time at which a periodic process pacing at `period` with a
/// relative clock drift `drift` (e.g. `1e-5`) should fire its `n`-th tick.
///
/// A positive drift makes the local clock run fast, i.e. the source emits
/// slightly more often than nominal in global time.
pub fn drifted_tick(start: SimTime, period: SimDuration, drift: f64, n: u64) -> SimTime {
    let nominal = period.as_nanos() as f64 * n as f64;
    start + SimDuration((nominal / (1.0 + drift)).round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn transfer_time_math() {
        let cfg = LinkConfig::new("l", 20_000_000);
        // 1 byte at 20 Mbit/s = 400ns.
        assert_eq!(cfg.transfer_time(1), SimDuration::from_nanos(400));
        // A 68-byte audio segment (36B header + 32B data) = 27.2us.
        assert_eq!(cfg.transfer_time(68), SimDuration::from_nanos(27_200));
    }

    #[test]
    fn zero_rate_is_instant() {
        let cfg = LinkConfig::new("l", 0);
        assert_eq!(cfg.transfer_time(100), SimDuration::ZERO);
    }

    #[test]
    fn message_arrives_after_transfer_time() {
        let mut sim = Simulation::new();
        let (tx, rx) = link::<Vec<u8>>(&sim.spawner(), LinkConfig::new("l", 8_000_000));
        sim.spawn("sender", async move {
            tx.send(vec![0u8; 1000]).await.unwrap(); // 1ms at 8Mbit/s
        });
        let at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = at.clone();
        sim.spawn("receiver", async move {
            let v = rx.recv().await.unwrap();
            assert_eq!(v.len(), 1000);
            *a.borrow_mut() = crate::now();
        });
        sim.run_until_idle();
        assert_eq!(*at.borrow(), SimTime::from_millis(1));
    }

    #[test]
    fn latency_added() {
        let mut sim = Simulation::new();
        let cfg = LinkConfig::new("l", 8_000_000).with_latency(SimDuration::from_millis(3));
        let (tx, rx) = link::<Vec<u8>>(&sim.spawner(), cfg);
        sim.spawn("sender", async move {
            tx.send(vec![0u8; 1000]).await.unwrap();
        });
        let at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = at.clone();
        sim.spawn("receiver", async move {
            rx.recv().await.unwrap();
            *a.borrow_mut() = crate::now();
        });
        sim.run_until_idle();
        assert_eq!(*at.borrow(), SimTime::from_millis(4));
    }

    #[test]
    fn back_to_back_messages_serialize() {
        let mut sim = Simulation::new();
        let (tx, rx) = link::<Vec<u8>>(&sim.spawner(), LinkConfig::new("l", 8_000_000));
        sim.spawn("sender", async move {
            for _ in 0..3 {
                tx.send(vec![0u8; 1000]).await.unwrap();
            }
        });
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("receiver", async move {
            for _ in 0..3 {
                rx.recv().await.unwrap();
                t.borrow_mut().push(crate::now().as_millis());
            }
        });
        sim.run_until_idle();
        assert_eq!(*times.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn slow_receiver_blocks_link_and_sender() {
        let mut sim = Simulation::new();
        let (tx, rx) = link::<Vec<u8>>(&sim.spawner(), LinkConfig::new("l", 8_000_000));
        let sent = Rc::new(RefCell::new(Vec::new()));
        let s = sent.clone();
        sim.spawn("sender", async move {
            for i in 0..3 {
                tx.send(vec![0u8; 1000]).await.unwrap();
                s.borrow_mut().push((i, crate::now().as_millis()));
            }
        });
        sim.spawn("receiver", async move {
            loop {
                crate::delay(SimDuration::from_millis(10)).await;
                if rx.recv().await.is_err() {
                    break;
                }
            }
        });
        sim.run_until_idle();
        let sent = sent.borrow();
        // First two hand-offs are quick (one in DMA buffer, one in flight);
        // the third must wait for the receiver's 10ms cadence.
        assert_eq!(sent[0].1, 0);
        assert!(sent[2].1 >= 10, "third send at {}ms", sent[2].1);
    }

    #[test]
    fn controlled_link_matches_plain_link_when_untouched() {
        let mut sim = Simulation::new();
        let (tx, rx, ctrl) =
            link_controlled::<Vec<u8>>(&sim.spawner(), LinkConfig::new("l", 8_000_000));
        assert!(ctrl.is_up());
        sim.spawn("sender", async move {
            tx.send(vec![0u8; 1000]).await.unwrap(); // 1ms at 8Mbit/s
        });
        let at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = at.clone();
        sim.spawn("receiver", async move {
            rx.recv().await.unwrap();
            *a.borrow_mut() = crate::now();
        });
        sim.run_until_idle();
        assert_eq!(*at.borrow(), SimTime::from_millis(1));
        assert_eq!(ctrl.flaps(), 0);
    }

    #[test]
    fn link_flap_holds_traffic_until_recovery() {
        let mut sim = Simulation::new();
        let (tx, rx, ctrl) =
            link_controlled::<Vec<u8>>(&sim.spawner(), LinkConfig::new("l", 8_000_000));
        sim.spawn("sender", async move {
            for _ in 0..3 {
                let _ = tx.send(vec![0u8; 1000]).await; // 1ms each
            }
        });
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("receiver", async move {
            while rx.recv().await.is_ok() {
                t.borrow_mut().push(crate::now().as_millis());
            }
        });
        sim.run_until(SimTime::from_micros(500));
        ctrl.set_up(false); // down mid-first-transfer
        sim.run_until(SimTime::from_millis(10));
        assert!(times.borrow().is_empty(), "no delivery while down");
        ctrl.set_up(true);
        sim.run_until(SimTime::from_millis(20));
        // First transfer had already clocked its bytes; it delivers on
        // recovery at 10ms, then the queue drains at the 1ms wire rate.
        assert_eq!(*times.borrow(), vec![10, 11, 12]);
        assert_eq!(ctrl.flaps(), 1);
    }

    #[test]
    fn bandwidth_collapse_stretches_transfers() {
        let mut sim = Simulation::new();
        let (tx, rx, ctrl) =
            link_controlled::<Vec<u8>>(&sim.spawner(), LinkConfig::new("l", 8_000_000));
        ctrl.set_rate_permille(250); // quarter rate: 1ms messages take 4ms
        sim.spawn("sender", async move {
            for _ in 0..2 {
                let _ = tx.send(vec![0u8; 1000]).await;
            }
        });
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        sim.spawn("receiver", async move {
            while rx.recv().await.is_ok() {
                t.borrow_mut().push(crate::now().as_millis());
            }
        });
        sim.run_until_idle();
        assert_eq!(*times.borrow(), vec![4, 8]);
    }

    #[test]
    fn drifted_tick_schedule() {
        let p = SimDuration::from_millis(2);
        // Zero drift: exact multiples.
        assert_eq!(
            drifted_tick(SimTime::ZERO, p, 0.0, 5),
            SimTime::from_millis(10)
        );
        // Fast source (positive drift): ticks come slightly early.
        let t = drifted_tick(SimTime::ZERO, p, 1e-5, 1_000_000);
        assert!(t < SimTime::from_secs(2_000));
        let slow = drifted_tick(SimTime::ZERO, p, -1e-5, 1_000_000);
        assert!(slow > SimTime::from_secs(2_000));
    }
}
