//! # pandora-sim — a deterministic transputer-style simulation kernel
//!
//! This crate is the substrate substitution for the Inmos transputer
//! hardware and Occam 2 runtime that Pandora was built on (see the paper's
//! §3.1 and DESIGN.md §2). It provides:
//!
//! * a single-threaded, deterministic, virtual-time **executor**
//!   ([`Simulation`]) with two task priorities, timers and a
//!   context-switch counter;
//! * **rendezvous channels** ([`channel`]) with Occam semantics — a send
//!   completes only when received — plus [`buffered`] and [`unbounded`]
//!   variants for hardware FIFOs and report sinks;
//! * **PRI ALT** ([`alt2`], [`alt3`], [`alt_many`], [`recv_deadline`]) —
//!   prioritized alternation so command channels can never be starved
//!   (Principle 4);
//! * **virtual CPUs** ([`Cpu`]) with non-preemptive priority dispatch and
//!   context-switch surcharges, so overload behaviour (the subject of the
//!   paper's principles) emerges from resource exhaustion;
//! * **links** ([`link`]) with bandwidth-limited, back-pressured transfer
//!   (Inmos links and board FIFOs);
//! * **tickers** ([`ticker`]) modelling the event-pin-driven codec FIFO,
//!   with overflow counting and configurable crystal drift.
//!
//! Everything runs in virtual time: a simulated minute of audio costs
//! milliseconds of host time, and two runs with the same seeds produce
//! identical schedules — which is what makes the paper's tables exactly
//! reproducible.
//!
//! ## Example
//!
//! ```
//! use pandora_sim::{Simulation, SimDuration};
//!
//! let mut sim = Simulation::new();
//! let (tx, rx) = pandora_sim::channel::<&'static str>();
//! sim.spawn("producer", async move {
//!     pandora_sim::delay(SimDuration::from_millis(2)).await;
//!     tx.send("block").await.unwrap();
//! });
//! sim.spawn("consumer", async move {
//!     assert_eq!(rx.recv().await.unwrap(), "block");
//! });
//! sim.run_until_idle();
//! assert_eq!(sim.now().as_millis(), 2);
//! ```

mod alt;
mod channel;
mod cpu;
mod executor;
mod link;
mod ticker;
mod time;

pub use alt::{
    alt2, alt2_deadline, alt3, alt3_deadline, alt4, alt4_deadline, alt_many, alt_many_deadline,
    recv_deadline, Alt2, Alt3, Alt4, AltMany, Either2, Either3, Either4, RecvDeadline,
};
pub use channel::{
    buffered, channel, unbounded, Receiver, RecvError, RecvFuture, SendError, SendFuture, Sender,
    TrySendError,
};
pub use cpu::{Claim, ClaimPriority, Cpu, PRIO_COMMAND, PRIO_NORMAL, PRIO_OUTPUT};
pub use executor::{
    delay, delay_until, delay_until_late, now, pause_matching, resume_matching, spawn, spawn_prio,
    try_now, yield_now, DeadlockReport, Delay, Priority, Simulation, Spawner, StopReason, TaskId,
};
pub use link::{
    drifted_tick, link, link_controlled, link_here, LinkConfig, LinkControl, LinkSender, WireSize,
};
pub use ticker::{ticker, Tick, TickerHandle};
pub use time::{SimDuration, SimTime};
