//! Prioritized alternation over channels — Occam's `PRI ALT`.
//!
//! Pandora's processes wait on several channels at once and must give some
//! inputs absolute priority: "the alternatives in the clause can be
//! prioritised so that important channels (such as those receiving
//! commands) cannot be ignored even if other alternatives are always
//! ready" (§3.1). This is the mechanism behind Principle 4 (command
//! priority).
//!
//! Guards are polled strictly in argument order, so the first listed
//! channel always wins when several are ready — put the command channel
//! first.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::channel::{Receiver, RecvError};
use crate::executor::{now, with_current};
use crate::time::SimTime;

/// Outcome of a two-way alternation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either2<A, B> {
    /// The first (highest priority) guard fired.
    A(A),
    /// The second guard fired.
    B(B),
}

/// Outcome of a three-way alternation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either3<A, B, C> {
    /// The first (highest priority) guard fired.
    A(A),
    /// The second guard fired.
    B(B),
    /// The third guard fired.
    C(C),
}

/// Waits on two channels, preferring `a` when both are ready.
///
/// A closed guard (all senders dropped) is skipped; if every guard is
/// closed the alternation resolves to `Err(RecvError)`.
pub fn alt2<'a, A, B>(a: &'a Receiver<A>, b: &'a Receiver<B>) -> Alt2<'a, A, B> {
    Alt2 {
        a,
        b,
        deadline: None,
        registered: false,
    }
}

/// Like [`alt2`] with a timeout guard of lowest priority; `None` on expiry.
pub fn alt2_deadline<'a, A, B>(
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    deadline: SimTime,
) -> Alt2<'a, A, B> {
    Alt2 {
        a,
        b,
        deadline: Some(deadline),
        registered: false,
    }
}

/// Future returned by [`alt2`] / [`alt2_deadline`].
pub struct Alt2<'a, A, B> {
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    deadline: Option<SimTime>,
    registered: bool,
}

impl<A, B> Future for Alt2<'_, A, B> {
    type Output = Option<Result<Either2<A, B>, RecvError>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut closed = 0;
        match self.a.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either2::A(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        match self.b.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either2::B(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        if closed == 2 {
            return Poll::Ready(Some(Err(RecvError)));
        }
        poll_deadline(self.deadline, &mut self.registered, cx)
    }
}

/// Waits on three channels with priority a > b > c.
pub fn alt3<'a, A, B, C>(
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    c: &'a Receiver<C>,
) -> Alt3<'a, A, B, C> {
    Alt3 {
        a,
        b,
        c,
        deadline: None,
        registered: false,
    }
}

/// Like [`alt3`] with a timeout guard of lowest priority; `None` on expiry.
pub fn alt3_deadline<'a, A, B, C>(
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    c: &'a Receiver<C>,
    deadline: SimTime,
) -> Alt3<'a, A, B, C> {
    Alt3 {
        a,
        b,
        c,
        deadline: Some(deadline),
        registered: false,
    }
}

/// Future returned by [`alt3`] / [`alt3_deadline`].
pub struct Alt3<'a, A, B, C> {
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    c: &'a Receiver<C>,
    deadline: Option<SimTime>,
    registered: bool,
}

impl<A, B, C> Future for Alt3<'_, A, B, C> {
    type Output = Option<Result<Either3<A, B, C>, RecvError>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut closed = 0;
        match self.a.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either3::A(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        match self.b.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either3::B(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        match self.c.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either3::C(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        if closed == 3 {
            return Poll::Ready(Some(Err(RecvError)));
        }
        poll_deadline(self.deadline, &mut self.registered, cx)
    }
}

/// Outcome of a four-way alternation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either4<A, B, C, D> {
    /// The first (highest priority) guard fired.
    A(A),
    /// The second guard fired.
    B(B),
    /// The third guard fired.
    C(C),
    /// The fourth guard fired.
    D(D),
}

/// Waits on four channels with priority a > b > c > d.
pub fn alt4<'a, A, B, C, D>(
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    c: &'a Receiver<C>,
    d: &'a Receiver<D>,
) -> Alt4<'a, A, B, C, D> {
    Alt4 {
        a,
        b,
        c,
        d,
        deadline: None,
        registered: false,
    }
}

/// Like [`alt4`] with a timeout guard of lowest priority; `None` on expiry.
pub fn alt4_deadline<'a, A, B, C, D>(
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    c: &'a Receiver<C>,
    d: &'a Receiver<D>,
    deadline: SimTime,
) -> Alt4<'a, A, B, C, D> {
    Alt4 {
        a,
        b,
        c,
        d,
        deadline: Some(deadline),
        registered: false,
    }
}

/// Future returned by [`alt4`] / [`alt4_deadline`].
pub struct Alt4<'a, A, B, C, D> {
    a: &'a Receiver<A>,
    b: &'a Receiver<B>,
    c: &'a Receiver<C>,
    d: &'a Receiver<D>,
    deadline: Option<SimTime>,
    registered: bool,
}

impl<A, B, C, D> Future for Alt4<'_, A, B, C, D> {
    type Output = Option<Result<Either4<A, B, C, D>, RecvError>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut closed = 0;
        match self.a.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either4::A(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        match self.b.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either4::B(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        match self.c.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either4::C(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        match self.d.poll_take(cx) {
            Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok(Either4::D(v)))),
            Poll::Ready(Err(RecvError)) => closed += 1,
            Poll::Pending => {}
        }
        if closed == 4 {
            return Poll::Ready(Some(Err(RecvError)));
        }
        poll_deadline(self.deadline, &mut self.registered, cx)
    }
}

/// Waits on a slice of same-typed channels, preferring lower indices.
///
/// Returns the winning index and value. Closed channels are skipped; when
/// all are closed the result is `Err(RecvError)`.
pub fn alt_many<'a, T>(guards: &'a [&'a Receiver<T>]) -> AltMany<'a, T> {
    AltMany {
        guards,
        deadline: None,
        registered: false,
    }
}

/// Like [`alt_many`] with a timeout guard; `None` on expiry.
pub fn alt_many_deadline<'a, T>(
    guards: &'a [&'a Receiver<T>],
    deadline: SimTime,
) -> AltMany<'a, T> {
    AltMany {
        guards,
        deadline: Some(deadline),
        registered: false,
    }
}

/// Future returned by [`alt_many`] / [`alt_many_deadline`].
pub struct AltMany<'a, T> {
    guards: &'a [&'a Receiver<T>],
    deadline: Option<SimTime>,
    registered: bool,
}

impl<T> Future for AltMany<'_, T> {
    type Output = Option<Result<(usize, T), RecvError>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut closed = 0;
        for (i, rx) in self.guards.iter().enumerate() {
            match rx.poll_take(cx) {
                Poll::Ready(Ok(v)) => return Poll::Ready(Some(Ok((i, v)))),
                Poll::Ready(Err(RecvError)) => closed += 1,
                Poll::Pending => {}
            }
        }
        if !self.guards.is_empty() && closed == self.guards.len() {
            return Poll::Ready(Some(Err(RecvError)));
        }
        poll_deadline(self.deadline, &mut self.registered, cx)
    }
}

/// Receives with an absolute-time timeout: `None` when the deadline passes
/// first.
pub fn recv_deadline<'a, T>(rx: &'a Receiver<T>, deadline: SimTime) -> RecvDeadline<'a, T> {
    RecvDeadline {
        rx,
        deadline,
        registered: false,
    }
}

/// Future returned by [`recv_deadline`].
pub struct RecvDeadline<'a, T> {
    rx: &'a Receiver<T>,
    deadline: SimTime,
    registered: bool,
}

impl<T> Future for RecvDeadline<'_, T> {
    type Output = Option<Result<T, RecvError>>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.rx.poll_take(cx) {
            Poll::Ready(r) => return Poll::Ready(Some(r)),
            Poll::Pending => {}
        }
        let deadline = Some(self.deadline);
        match poll_deadline::<()>(deadline, &mut self.registered, cx) {
            Poll::Ready(_) => Poll::Ready(None),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Shared tail for deadline guards: `Ready(None)` on expiry, else registers
/// a timer once and stays pending.
fn poll_deadline<V>(
    deadline: Option<SimTime>,
    registered: &mut bool,
    cx: &mut Context<'_>,
) -> Poll<Option<V>> {
    if let Some(d) = deadline {
        if now() >= d {
            return Poll::Ready(None);
        }
        if !*registered {
            with_current(|i| i.register_timer(d, cx.waker().clone()));
            *registered = true;
        }
    }
    Poll::Pending
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{channel, unbounded};
    use crate::executor::Simulation;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn alt2_prefers_first_guard() {
        let mut sim = Simulation::new();
        let (txa, rxa) = unbounded::<u32>();
        let (txb, rxb) = unbounded::<&'static str>();
        txa.try_send(1).unwrap();
        txb.try_send("x").unwrap();
        let out = Rc::new(RefCell::new(Vec::new()));
        let o = out.clone();
        sim.spawn("alt", async move {
            // Both ready: guard A must win, then B.
            match alt2(&rxa, &rxb).await.unwrap().unwrap() {
                Either2::A(v) => o.borrow_mut().push(format!("a{v}")),
                Either2::B(v) => o.borrow_mut().push(format!("b{v}")),
            }
            match alt2(&rxa, &rxb).await.unwrap().unwrap() {
                Either2::A(v) => o.borrow_mut().push(format!("a{v}")),
                Either2::B(v) => o.borrow_mut().push(format!("b{v}")),
            }
        });
        sim.run_until_idle();
        assert_eq!(*out.borrow(), ["a1", "bx"]);
    }

    #[test]
    fn alt2_wakes_on_later_send() {
        let mut sim = Simulation::new();
        let (txa, rxa) = channel::<u32>();
        let (_txb, rxb) = channel::<u32>();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        sim.spawn("alt", async move {
            if let Some(Ok(Either2::A(v))) = alt2(&rxa, &rxb).await {
                *g.borrow_mut() = Some(v);
            }
        });
        sim.spawn("sender", async move {
            crate::delay(SimDuration::from_millis(3)).await;
            txa.send(7).await.unwrap();
        });
        sim.run_until_idle();
        assert_eq!(*got.borrow(), Some(7));
    }

    #[test]
    fn alt_deadline_fires_when_nothing_ready() {
        let mut sim = Simulation::new();
        let (_txa, rxa) = channel::<u32>();
        let (_txb, rxb) = channel::<u32>();
        let expired = Rc::new(RefCell::new(false));
        let e = expired.clone();
        sim.spawn("alt", async move {
            let r = alt2_deadline(&rxa, &rxb, SimTime::from_millis(5)).await;
            assert!(r.is_none());
            assert_eq!(crate::now(), SimTime::from_millis(5));
            *e.borrow_mut() = true;
        });
        sim.run_until_idle();
        assert!(*expired.borrow());
    }

    #[test]
    fn alt3_priority_order() {
        let mut sim = Simulation::new();
        let (txa, rxa) = unbounded::<u8>();
        let (txb, rxb) = unbounded::<u8>();
        let (txc, rxc) = unbounded::<u8>();
        txc.try_send(3).unwrap();
        txb.try_send(2).unwrap();
        txa.try_send(1).unwrap();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        sim.spawn("alt", async move {
            for _ in 0..3 {
                match alt3(&rxa, &rxb, &rxc).await.unwrap().unwrap() {
                    Either3::A(v) | Either3::B(v) | Either3::C(v) => o.borrow_mut().push(v),
                }
            }
        });
        sim.run_until_idle();
        assert_eq!(*order.borrow(), [1, 2, 3]);
    }

    #[test]
    fn alt_many_returns_lowest_ready_index() {
        let mut sim = Simulation::new();
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..4).map(|_| unbounded::<u32>()).unzip();
        senders[2].try_send(20).unwrap();
        senders[3].try_send(30).unwrap();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        sim.spawn("alt", async move {
            let guards: Vec<&Receiver<u32>> = receivers.iter().collect();
            let (i, v) = alt_many(&guards).await.unwrap().unwrap();
            *g.borrow_mut() = Some((i, v));
        });
        sim.run_until_idle();
        assert_eq!(*got.borrow(), Some((2, 20)));
    }

    #[test]
    fn alt_many_all_closed_errors() {
        let mut sim = Simulation::new();
        let rxs: Vec<Receiver<u32>> = (0..3)
            .map(|_| {
                let (_tx, rx) = channel::<u32>();
                rx
            })
            .collect();
        let saw = Rc::new(RefCell::new(false));
        let s = saw.clone();
        sim.spawn("alt", async move {
            let guards: Vec<&Receiver<u32>> = rxs.iter().collect();
            assert_eq!(alt_many(&guards).await, Some(Err(RecvError)));
            *s.borrow_mut() = true;
        });
        sim.run_until_idle();
        assert!(*saw.borrow());
    }

    #[test]
    fn recv_deadline_times_out_and_succeeds() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        sim.spawn("rx", async move {
            // First wait times out at 2ms.
            let r = recv_deadline(&rx, SimTime::from_millis(2)).await;
            l.borrow_mut()
                .push(format!("{r:?}@{}", crate::now().as_millis()));
            // Second wait succeeds at 5ms.
            let r = recv_deadline(&rx, SimTime::from_millis(10)).await;
            l.borrow_mut()
                .push(format!("{r:?}@{}", crate::now().as_millis()));
        });
        sim.spawn("tx", async move {
            crate::delay(SimDuration::from_millis(5)).await;
            tx.send(9).await.unwrap();
        });
        sim.run_until_idle();
        assert_eq!(*log.borrow(), ["None@2", "Some(Ok(9))@5"]);
    }

    #[test]
    fn alt4_priority_order() {
        let mut sim = Simulation::new();
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..4).map(|_| unbounded::<u8>()).unzip();
        for (i, tx) in txs.iter().enumerate().rev() {
            tx.try_send(i as u8).unwrap();
        }
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        sim.spawn("alt", async move {
            for _ in 0..4 {
                match alt4(&rxs[0], &rxs[1], &rxs[2], &rxs[3])
                    .await
                    .unwrap()
                    .unwrap()
                {
                    Either4::A(v) | Either4::B(v) | Either4::C(v) | Either4::D(v) => {
                        o.borrow_mut().push(v)
                    }
                }
            }
        });
        sim.run_until_idle();
        assert_eq!(*order.borrow(), [0, 1, 2, 3]);
    }

    #[test]
    fn alt4_deadline_expires() {
        let mut sim = Simulation::new();
        let (_t1, r1) = channel::<u8>();
        let (_t2, r2) = channel::<u8>();
        let (_t3, r3) = channel::<u8>();
        let (_t4, r4) = channel::<u8>();
        let done = Rc::new(RefCell::new(false));
        let d = done.clone();
        sim.spawn("alt", async move {
            let r = alt4_deadline(&r1, &r2, &r3, &r4, SimTime::from_millis(3)).await;
            assert!(r.is_none());
            *d.borrow_mut() = true;
        });
        sim.run_until_idle();
        assert!(*done.borrow());
    }

    #[test]
    fn command_priority_under_stream_flood() {
        // Principle 4: a PRI ALT with the command channel first must keep
        // serving commands even when the data guard is always ready.
        let mut sim = Simulation::new();
        let (cmd_tx, cmd_rx) = unbounded::<&'static str>();
        let (data_tx, data_rx) = unbounded::<u64>();
        for i in 0..1000 {
            data_tx.try_send(i).unwrap();
        }
        cmd_tx.try_send("stop-stream").unwrap();
        let first = Rc::new(RefCell::new(None));
        let f = first.clone();
        sim.spawn("process", async move {
            match alt2(&cmd_rx, &data_rx).await.unwrap().unwrap() {
                Either2::A(c) => *f.borrow_mut() = Some(format!("cmd:{c}")),
                Either2::B(d) => *f.borrow_mut() = Some(format!("data:{d}")),
            }
        });
        sim.run_until_idle();
        assert_eq!(first.borrow().as_deref(), Some("cmd:stop-stream"));
    }
}
