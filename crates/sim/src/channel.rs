//! Occam-style channels.
//!
//! The default channel is a **rendezvous** (capacity 0): a `send` does not
//! complete until the receiver has taken the value, exactly like an Occam 2
//! channel communication on the transputer (§3.1: "the hardware scheduler
//! will automatically block the first of the processes ... to reach the
//! transfer"). This blocking is the back-pressure mechanism the whole
//! Pandora design leans on.
//!
//! [`buffered`] channels complete sends early while there is space — used
//! to model hardware FIFOs and report channels. [`unbounded`] never blocks
//! the sender.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Error returned by `send` when the receiver has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError;

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: receiver dropped")
    }
}
impl std::error::Error for SendError {}

/// Error returned by `recv` when all senders are gone and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed: all senders dropped")
    }
}
impl std::error::Error for RecvError {}

struct QEntry<T> {
    value: T,
    // Present while the sending future is still waiting for acceptance.
    pending: Option<PendingSend>,
}

struct PendingSend {
    done: Rc<Cell<bool>>,
    waker: Rc<RefCell<Option<Waker>>>,
}

pub(crate) struct ChanState<T> {
    queue: RefCell<VecDeque<QEntry<T>>>,
    capacity: usize,
    recv_waker: RefCell<Option<Waker>>,
    senders: Cell<usize>,
    receiver_alive: Cell<bool>,
}

impl<T> ChanState<T> {
    fn wake_receiver(&self) {
        if let Some(w) = self.recv_waker.borrow_mut().take() {
            w.wake();
        }
    }

    /// Completes the pending flags of every entry now within capacity.
    fn accept_within_capacity(&self) {
        let queue = self.queue.borrow();
        for entry in queue.iter().take(self.capacity) {
            if let Some(p) = &entry.pending {
                p.done.set(true);
                if let Some(w) = p.waker.borrow_mut().take() {
                    w.wake();
                }
            }
        }
    }

    fn pop(&self) -> Option<T> {
        let entry = self.queue.borrow_mut().pop_front()?;
        if let Some(p) = entry.pending {
            p.done.set(true);
            if let Some(w) = p.waker.borrow_mut().take() {
                w.wake();
            }
        }
        self.accept_within_capacity();
        Some(entry.value)
    }

    fn poll_take(&self, cx: &mut Context<'_>) -> Poll<Result<T, RecvError>> {
        if let Some(v) = self.pop() {
            return Poll::Ready(Ok(v));
        }
        if self.senders.get() == 0 {
            return Poll::Ready(Err(RecvError));
        }
        *self.recv_waker.borrow_mut() = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Creates a rendezvous channel: `send` completes only when the value has
/// been received (Occam semantics).
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(0)
}

/// Creates a channel where up to `capacity` sends complete without waiting
/// for the receiver; further sends block (models a hardware FIFO).
pub fn buffered<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(capacity)
}

/// Creates a channel whose sends never block (models a report sink).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let state = Rc::new(ChanState {
        queue: RefCell::new(VecDeque::new()),
        capacity,
        recv_waker: RefCell::new(None),
        senders: Cell::new(1),
        receiver_alive: Cell::new(true),
    });
    (
        Sender {
            state: state.clone(),
        },
        Receiver { state },
    )
}

/// The sending half of a channel. Cloneable (many-to-one).
pub struct Sender<T> {
    state: Rc<ChanState<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.senders.set(self.state.senders.get() + 1);
        Sender {
            state: self.state.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let n = self.state.senders.get() - 1;
        self.state.senders.set(n);
        if n == 0 {
            self.state.wake_receiver();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a value, completing per the channel's capacity semantics.
    ///
    /// Returns `Err(SendError)` if the receiver has been dropped. If the
    /// returned future is dropped before completing, the value is withdrawn
    /// and not delivered.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            chan: &self.state,
            value: Some(value),
            pending: None,
        }
    }

    /// Sends without ever blocking: succeeds immediately if the queue has
    /// space below capacity or the channel is unbounded; otherwise returns
    /// the value back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        if !self.state.receiver_alive.get() {
            return Err(TrySendError::Closed(value));
        }
        if self.state.queue.borrow().len() < self.state.capacity {
            self.state.queue.borrow_mut().push_back(QEntry {
                value,
                pending: None,
            });
            self.state.wake_receiver();
            Ok(())
        } else {
            Err(TrySendError::Full(value))
        }
    }

    /// Appends as many values as the remaining capacity allows in a
    /// single queue pass — the bulk counterpart of [`Sender::try_send`]
    /// for burst transport: one capacity check, one queue borrow and one
    /// receiver wake for the whole batch instead of one per item.
    ///
    /// Returns the number of values accepted. Values beyond the free
    /// space are left unconsumed in `values` (and dropped with it unless
    /// the caller keeps the iterator); with no other task running between
    /// the per-item sends, the accepted prefix is exactly the set a
    /// `try_send` loop would have accepted.
    pub fn try_send_many(&self, values: impl Iterator<Item = T>) -> usize {
        if !self.state.receiver_alive.get() {
            return 0;
        }
        let mut queue = self.state.queue.borrow_mut();
        let space = self.state.capacity.saturating_sub(queue.len());
        let mut accepted = 0;
        for value in values.take(space) {
            queue.push_back(QEntry {
                value,
                pending: None,
            });
            accepted += 1;
        }
        drop(queue);
        if accepted > 0 {
            self.state.wake_receiver();
        }
        accepted
    }

    /// Number of values queued and not yet received.
    pub fn len(&self) -> usize {
        self.state.queue.borrow().len()
    }

    /// Returns `true` when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the receiver has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.state.receiver_alive.get()
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the value is handed back.
    Full(T),
    /// The receiver has been dropped; the value is handed back.
    Closed(T),
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    chan: &'a Rc<ChanState<T>>,
    value: Option<T>,
    pending: Option<PendingHandle>,
}

struct PendingHandle {
    done: Rc<Cell<bool>>,
    waker: Rc<RefCell<Option<Waker>>>,
}

// `SendFuture` holds no self-references — a channel handle, an owned
// value, and a shared-cell pending handle — so it is freely movable and
// pin-projection is safe via `Pin::get_mut`, no `unsafe` required.
impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(p) = &this.pending {
            if p.done.get() {
                this.pending = None;
                return Poll::Ready(Ok(()));
            }
            if !this.chan.receiver_alive.get() {
                this.pending = None;
                return Poll::Ready(Err(SendError));
            }
            *p.waker.borrow_mut() = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let Some(value) = this.value.take() else {
            // Completed already (polled after Ready) — treat as done.
            return Poll::Ready(Ok(()));
        };
        if !this.chan.receiver_alive.get() {
            return Poll::Ready(Err(SendError));
        }
        let within_capacity = this.chan.queue.borrow().len() < this.chan.capacity;
        if within_capacity {
            this.chan.queue.borrow_mut().push_back(QEntry {
                value,
                pending: None,
            });
            this.chan.wake_receiver();
            return Poll::Ready(Ok(()));
        }
        let done = Rc::new(Cell::new(false));
        let waker = Rc::new(RefCell::new(Some(cx.waker().clone())));
        this.chan.queue.borrow_mut().push_back(QEntry {
            value,
            pending: Some(PendingSend {
                done: done.clone(),
                waker: waker.clone(),
            }),
        });
        this.chan.wake_receiver();
        this.pending = Some(PendingHandle { done, waker });
        Poll::Pending
    }
}

impl<T> Drop for SendFuture<'_, T> {
    fn drop(&mut self) {
        // A cancelled send must not deliver its value: withdraw the entry.
        if let Some(p) = &self.pending {
            if !p.done.get() {
                let mut queue = self.chan.queue.borrow_mut();
                if let Some(pos) = queue.iter().position(|e| {
                    e.pending
                        .as_ref()
                        .is_some_and(|q| Rc::ptr_eq(&q.done, &p.done))
                }) {
                    queue.remove(pos);
                }
            }
        }
    }
}

/// The receiving half of a channel (single consumer).
pub struct Receiver<T> {
    state: Rc<ChanState<T>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.state.receiver_alive.set(false);
        // Wake every blocked sender so it can observe the closure.
        for entry in self.state.queue.borrow().iter() {
            if let Some(p) = &entry.pending {
                if let Some(w) = p.waker.borrow_mut().take() {
                    w.wake();
                }
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, waiting if none is queued.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { chan: &self.state }
    }

    /// Takes a queued value without waiting.
    pub fn try_recv(&self) -> Option<T> {
        self.state.pop()
    }

    /// Number of values queued.
    pub fn len(&self) -> usize {
        self.state.queue.borrow().len()
    }

    /// Returns `true` when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when every sender has been dropped.
    pub fn is_closed(&self) -> bool {
        self.state.senders.get() == 0
    }

    pub(crate) fn poll_take(&self, cx: &mut Context<'_>) -> Poll<Result<T, RecvError>> {
        self.state.poll_take(cx)
    }
}

/// Future returned by [`Receiver::recv`].
pub struct RecvFuture<'a, T> {
    chan: &'a Rc<ChanState<T>>,
}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.chan.poll_take(cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Simulation;
    use crate::time::{SimDuration, SimTime};
    use std::rc::Rc as StdRc;

    #[test]
    fn rendezvous_blocks_sender_until_received() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        let sent_at = StdRc::new(Cell::new(SimTime::ZERO));
        let sa = sent_at.clone();
        sim.spawn("sender", async move {
            tx.send(1).await.unwrap();
            sa.set(crate::now());
        });
        sim.spawn("receiver", async move {
            crate::delay(SimDuration::from_millis(5)).await;
            assert_eq!(rx.recv().await.unwrap(), 1);
        });
        sim.run_until_idle();
        // The sender only completed when the receiver took the value at t=5ms.
        assert_eq!(sent_at.get(), SimTime::from_millis(5));
    }

    #[test]
    fn buffered_sender_completes_early_until_full() {
        let mut sim = Simulation::new();
        let (tx, rx) = buffered::<u32>(2);
        let progress = StdRc::new(Cell::new(0u32));
        let p = progress.clone();
        sim.spawn("sender", async move {
            tx.send(1).await.unwrap();
            p.set(1);
            tx.send(2).await.unwrap();
            p.set(2);
            tx.send(3).await.unwrap(); // Blocks: capacity 2.
            p.set(3);
        });
        sim.run_for(SimDuration::from_millis(1));
        assert_eq!(progress.get(), 2);
        sim.spawn("receiver", async move {
            assert_eq!(rx.recv().await.unwrap(), 1);
            assert_eq!(rx.recv().await.unwrap(), 2);
            assert_eq!(rx.recv().await.unwrap(), 3);
        });
        sim.run_until_idle();
        assert_eq!(progress.get(), 3);
    }

    #[test]
    fn unbounded_never_blocks() {
        let mut sim = Simulation::new();
        let (tx, rx) = unbounded::<u32>();
        sim.spawn("sender", async move {
            for i in 0..1000 {
                tx.send(i).await.unwrap();
            }
        });
        sim.run_until_idle();
        assert_eq!(rx.len(), 1000);
        let mut got = 0;
        while rx.try_recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 1000);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sim = Simulation::new();
        let (tx, rx) = unbounded::<u32>();
        let out = StdRc::new(RefCell::new(Vec::new()));
        let o = out.clone();
        sim.spawn("sender", async move {
            for i in 0..10 {
                tx.send(i).await.unwrap();
            }
        });
        sim.spawn("receiver", async move {
            while let Ok(v) = rx.recv().await {
                o.borrow_mut().push(v);
            }
        });
        sim.run_until_idle();
        assert_eq!(*out.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_when_all_senders_dropped() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        sim.spawn("sender", async move {
            tx.send(9).await.unwrap();
            // tx dropped here.
        });
        let saw = StdRc::new(Cell::new(false));
        let s = saw.clone();
        sim.spawn("receiver", async move {
            assert_eq!(rx.recv().await.unwrap(), 9);
            assert_eq!(rx.recv().await, Err(RecvError));
            s.set(true);
        });
        sim.run_until_idle();
        assert!(saw.get());
    }

    #[test]
    fn send_errors_when_receiver_dropped() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        drop(rx);
        let saw = StdRc::new(Cell::new(false));
        let s = saw.clone();
        sim.spawn("sender", async move {
            assert_eq!(tx.send(1).await, Err(SendError));
            s.set(true);
        });
        sim.run_until_idle();
        assert!(saw.get());
    }

    #[test]
    fn blocked_sender_wakes_when_receiver_dropped() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        let saw = StdRc::new(Cell::new(false));
        let s = saw.clone();
        sim.spawn("sender", async move {
            assert_eq!(tx.send(1).await, Err(SendError));
            s.set(true);
        });
        sim.spawn("dropper", async move {
            crate::delay(SimDuration::from_millis(1)).await;
            drop(rx);
        });
        sim.run_until_idle();
        assert!(saw.get());
    }

    #[test]
    fn try_send_respects_capacity() {
        let (tx, rx) = buffered::<u32>(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(tx.try_send(2), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(3), Err(TrySendError::Closed(3)));
    }

    #[test]
    fn try_send_many_accepts_exactly_the_free_space() {
        let (tx, rx) = buffered::<u32>(4);
        assert_eq!(tx.try_send(0), Ok(()));
        // Three slots left: the batch's first three values go in, the
        // fourth is rejected — the same prefix a try_send loop accepts.
        let accepted = tx.try_send_many([1, 2, 3, 4].into_iter());
        assert_eq!(accepted, 3);
        let drained: Vec<u32> = std::iter::from_fn(|| rx.try_recv()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        // With the queue drained the rest of a new batch fits.
        assert_eq!(tx.try_send_many([5, 6].into_iter()), 2);
        drop(rx);
        assert_eq!(tx.try_send_many([7].into_iter()), 0, "closed accepts none");
    }

    #[test]
    fn try_send_many_wakes_receiver() {
        let mut sim = Simulation::new();
        let (tx, rx) = buffered::<u32>(8);
        let got = StdRc::new(Cell::new(0u32));
        let g = got.clone();
        sim.spawn("rx", async move {
            while rx.recv().await.is_ok() {
                g.set(g.get() + 1);
            }
        });
        sim.spawn("tx", async move {
            crate::delay(SimDuration::from_millis(1)).await;
            assert_eq!(tx.try_send_many((0..5).collect::<Vec<_>>().into_iter()), 5);
        });
        sim.run_until_idle();
        assert_eq!(got.get(), 5);
    }

    #[test]
    fn try_send_on_rendezvous_always_full() {
        let (tx, _rx) = channel::<u32>();
        assert_eq!(tx.try_send(1), Err(TrySendError::Full(1)));
    }

    #[test]
    fn multi_sender_clone_counts() {
        let mut sim = Simulation::new();
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        sim.spawn("a", async move {
            tx.send(1).await.unwrap();
        });
        sim.spawn("b", async move {
            tx2.send(2).await.unwrap();
        });
        let n = StdRc::new(Cell::new(0));
        let n2 = n.clone();
        sim.spawn("rx", async move {
            while rx.recv().await.is_ok() {
                n2.set(n2.get() + 1);
            }
        });
        sim.run_until_idle();
        assert_eq!(n.get(), 2);
    }

    #[test]
    fn cancelled_send_withdraws_value() {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        sim.spawn("sender", async move {
            // Send with a deadline that expires before any receiver arrives.
            let send = tx.send(42);
            let timeout = crate::delay(SimDuration::from_millis(1));
            futures_race(send, timeout).await;
            // Hold the sender open so recv below observes emptiness rather
            // than closure.
            crate::delay(SimDuration::from_millis(10)).await;
            drop(tx);
        });
        let got = StdRc::new(RefCell::new(None));
        let g = got.clone();
        sim.spawn("receiver", async move {
            crate::delay(SimDuration::from_millis(5)).await;
            *g.borrow_mut() = Some(rx.recv().await);
        });
        sim.run_until_idle();
        // The send was cancelled at t=1ms, so the receiver sees closure, not 42.
        assert_eq!(*got.borrow(), Some(Err(RecvError)));
    }

    /// Minimal two-future race for tests (first to complete wins, other dropped).
    async fn futures_race<A, B>(a: A, b: B)
    where
        A: Future,
        B: Future,
    {
        // Boxing the contenders keeps the race entirely in safe code: the
        // pinned futures live on the heap, so `Race` itself stays `Unpin`
        // and projection needs no `unsafe`.
        struct Race<A, B>(Option<Pin<Box<A>>>, Option<Pin<Box<B>>>);
        impl<A: Future, B: Future> Future for Race<A, B> {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                let this = self.get_mut();
                if let Some(a) = &mut this.0 {
                    if a.as_mut().poll(cx).is_ready() {
                        return Poll::Ready(());
                    }
                }
                if let Some(b) = &mut this.1 {
                    if b.as_mut().poll(cx).is_ready() {
                        return Poll::Ready(());
                    }
                }
                Poll::Pending
            }
        }
        Race(Some(Box::pin(a)), Some(Box::pin(b))).await
    }
}
