//! 2 ms audio blocks and their grouping into segments.
//!
//! §3.2: audio "is handled in blocks of 16 samples, representing 2ms of
//! audio. For the purposes of transmission outside the audio board, a
//! number of these blocks are grouped together with a header to form a
//! pandora segment. ... The number of blocks in each outgoing segment can
//! be varied. We usually run with 2 blocks per segment (principle 7), but
//! can alter this dynamically if the recipient cannot handle the arrival
//! rate (perhaps using 12 blocks = 24ms) or if we want a particularly low
//! latency (1 block = 2ms)."

use pandora_segment::{AudioSegment, SequenceNumber, Timestamp, BLOCK_BYTES};

/// One 2 ms block of 16 µ-law samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block(pub [u8; BLOCK_BYTES]);

impl Block {
    /// A block of µ-law silence.
    pub const SILENCE: Block = Block([crate::mulaw::SILENCE; BLOCK_BYTES]);

    /// Builds a block from a 16-byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly 16 bytes.
    pub fn from_slice(bytes: &[u8]) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        b.copy_from_slice(bytes);
        Block(b)
    }

    /// Peak linear magnitude of the samples in this block.
    pub fn peak(&self) -> i32 {
        self.0
            .iter()
            .map(|&b| crate::mulaw::decode(b).abs())
            .max()
            .unwrap_or(0)
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::SILENCE
    }
}

/// Groups blocks into outgoing segments with sequence numbers and source
/// timestamps — the block handler's "server writer" feed (§3.5).
///
/// "When sufficient 2ms blocks have accumulated to justify the overhead of
/// a Pandora segment header, the server writer process is ordered by the
/// block handler to transmit them."
#[derive(Debug)]
pub struct SegmentAssembler {
    blocks_per_segment: usize,
    pending: Vec<u8>,
    pending_timestamp: Timestamp,
    next_seq: SequenceNumber,
}

impl SegmentAssembler {
    /// Creates an assembler emitting `blocks_per_segment` blocks per segment.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_segment` is zero.
    pub fn new(blocks_per_segment: usize) -> Self {
        assert!(
            blocks_per_segment > 0,
            "blocks_per_segment must be non-zero"
        );
        SegmentAssembler {
            blocks_per_segment,
            pending: Vec::new(),
            pending_timestamp: Timestamp(0),
            next_seq: SequenceNumber(0),
        }
    }

    /// Changes the grouping factor for subsequent segments.
    ///
    /// "We can alter this dynamically if the recipient cannot handle the
    /// arrival rate." Takes effect at the next segment boundary; any
    /// accumulated blocks are kept.
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_segment` is zero.
    pub fn set_blocks_per_segment(&mut self, blocks_per_segment: usize) {
        assert!(
            blocks_per_segment > 0,
            "blocks_per_segment must be non-zero"
        );
        self.blocks_per_segment = blocks_per_segment;
    }

    /// Current grouping factor.
    pub fn blocks_per_segment(&self) -> usize {
        self.blocks_per_segment
    }

    /// Number of blocks accumulated toward the next segment.
    pub fn pending_blocks(&self) -> usize {
        self.pending.len() / BLOCK_BYTES
    }

    /// Adds one block captured at `timestamp` (the time of its first
    /// sample); returns a segment when the group is complete.
    pub fn push(&mut self, block: Block, timestamp: Timestamp) -> Option<AudioSegment> {
        if self.pending.is_empty() {
            self.pending_timestamp = timestamp;
        }
        self.pending.extend_from_slice(&block.0);
        if self.pending_blocks() >= self.blocks_per_segment {
            Some(self.flush().expect("pending is non-empty"))
        } else {
            None
        }
    }

    /// Emits a segment from whatever blocks are pending, if any.
    pub fn flush(&mut self) -> Option<AudioSegment> {
        if self.pending.is_empty() {
            return None;
        }
        let data = std::mem::take(&mut self.pending);
        let seg = AudioSegment::from_blocks(self.next_seq, self.pending_timestamp, data);
        self.next_seq = self.next_seq.next();
        Some(seg)
    }
}

/// Splits an incoming segment into blocks for the clawback/mixing path.
///
/// "Incoming segments of any mixture of sizes are accepted" (§3.2).
pub fn segment_blocks(segment: &AudioSegment) -> Vec<Block> {
    segment.blocks().map(Block::from_slice).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_segment::BLOCK_DURATION_NANOS;

    fn ts(block_index: u64) -> Timestamp {
        Timestamp::from_nanos(block_index * BLOCK_DURATION_NANOS)
    }

    #[test]
    fn default_two_block_grouping() {
        let mut asm = SegmentAssembler::new(2);
        assert!(asm.push(Block::SILENCE, ts(0)).is_none());
        let seg = asm
            .push(Block::SILENCE, ts(1))
            .expect("second block completes segment");
        assert_eq!(seg.block_count(), 2);
        assert_eq!(seg.common.sequence, SequenceNumber(0));
        assert_eq!(seg.common.timestamp, ts(0));
        assert_eq!(seg.wire_bytes(), 68);
    }

    #[test]
    fn sequence_numbers_increment() {
        let mut asm = SegmentAssembler::new(1);
        let a = asm.push(Block::SILENCE, ts(0)).unwrap();
        let b = asm.push(Block::SILENCE, ts(1)).unwrap();
        assert_eq!(a.common.sequence, SequenceNumber(0));
        assert_eq!(b.common.sequence, SequenceNumber(1));
    }

    #[test]
    fn twelve_block_grouping_is_24ms() {
        let mut asm = SegmentAssembler::new(12);
        for i in 0..11 {
            assert!(asm.push(Block::SILENCE, ts(i)).is_none());
        }
        let seg = asm.push(Block::SILENCE, ts(11)).unwrap();
        assert_eq!(seg.duration_nanos(), 24_000_000);
    }

    #[test]
    fn dynamic_regrouping_takes_effect() {
        let mut asm = SegmentAssembler::new(2);
        asm.push(Block::SILENCE, ts(0));
        asm.set_blocks_per_segment(1);
        // The pending block plus this one: group of 1 means this push
        // completes immediately with both? No: group boundary check uses
        // the new factor, so the pending single block already satisfies it.
        let seg = asm.push(Block::SILENCE, ts(1)).unwrap();
        assert_eq!(seg.block_count(), 2);
        let seg2 = asm.push(Block::SILENCE, ts(2)).unwrap();
        assert_eq!(seg2.block_count(), 1);
    }

    #[test]
    fn flush_emits_partial() {
        let mut asm = SegmentAssembler::new(12);
        asm.push(Block::SILENCE, ts(0));
        asm.push(Block::SILENCE, ts(1));
        let seg = asm.flush().unwrap();
        assert_eq!(seg.block_count(), 2);
        assert!(asm.flush().is_none());
    }

    #[test]
    fn timestamp_is_first_block_of_group() {
        let mut asm = SegmentAssembler::new(2);
        asm.push(Block::SILENCE, ts(4));
        let seg = asm.push(Block::SILENCE, ts(5)).unwrap();
        assert_eq!(seg.common.timestamp, ts(4));
    }

    #[test]
    fn segment_blocks_round_trip() {
        let mut asm = SegmentAssembler::new(3);
        let mut blocks = Vec::new();
        let mut seg = None;
        for i in 0..3u8 {
            let b = Block([i; BLOCK_BYTES]);
            blocks.push(b);
            seg = asm.push(b, ts(i as u64));
        }
        let seg = seg.expect("third push completes the segment");
        assert_eq!(segment_blocks(&seg), blocks);
    }

    #[test]
    fn block_peak() {
        assert_eq!(Block::SILENCE.peak(), 0);
        let loud = Block([crate::mulaw::encode(20_000); BLOCK_BYTES]);
        assert!(loud.peak() > 18_000);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_group_rejected() {
        let _ = SegmentAssembler::new(0);
    }
}
