//! The two-stage muting function of §4.3 and figure 4.1.
//!
//! "The data stream to the loudspeaker is monitored for samples exceeding
//! a threshold level. When the level is exceeded, the data stream from the
//! microphone is muted in two stages, and returned to full volume after a
//! sufficient time for any room reverberations to die away. ... The
//! threshold, muting factors and delay times are all dynamically
//! alterable, but our default values are shown in figure 4.1." The default
//! schedule is 100 % → 20 % while the threshold is exceeded (and for 22 ms
//! after), then 50 % for a further 22 ms, then back to 100 %. Muting is
//! applied by lookup tables that scale µ-law bytes directly.

use crate::block::Block;
use crate::mulaw;
use crate::q15::Q15;
use pandora_segment::BLOCK_DURATION_NANOS;

/// Muting parameters (defaults from figure 4.1).
#[derive(Debug, Clone, Copy)]
pub struct MutingConfig {
    /// Linear magnitude on the speaker stream that triggers muting.
    pub threshold: i32,
    /// Gain while in the deep-mute stage (default 20 %).
    pub deep_factor: f64,
    /// Gain while in the recovery stage (default 50 %).
    pub half_factor: f64,
    /// Time spent in the deep stage after the speaker goes quiet (22 ms).
    pub deep_hold_ns: u64,
    /// Time spent in the recovery stage before full volume (22 ms).
    pub half_hold_ns: u64,
}

impl Default for MutingConfig {
    fn default() -> Self {
        MutingConfig {
            threshold: 8_000,
            deep_factor: 0.2,
            half_factor: 0.5,
            deep_hold_ns: 22_000_000,
            half_hold_ns: 22_000_000,
        }
    }
}

/// The gain stage the microphone stream is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuteStage {
    /// Full volume (factor 1.0).
    Full,
    /// Deep mute (default 20 %).
    Deep,
    /// Recovery (default 50 %).
    Half,
}

/// Two-stage echo-suppression state machine operating at 2 ms block
/// granularity ("the 2ms granularity was chosen for convenience as this is
/// the smallest unit of data that we move around in the audio code").
///
/// Call [`Muting::observe_speaker`] with each outgoing speaker block
/// *before* it reaches the codec, then [`Muting::apply_mic`] on the
/// corresponding microphone block — the paper notes this ordering gives at
/// least 4 ms of reaction headroom.
#[derive(Debug)]
pub struct Muting {
    config: MutingConfig,
    stage: MuteStage,
    /// Time remaining in the current hold, in nanoseconds.
    hold_remaining_ns: u64,
    deep_table: [u8; 256],
    half_table: [u8; 256],
}

impl Muting {
    /// Creates the state machine with the given parameters.
    ///
    /// The scaling tables are built through Q15 fixed-point gains (the
    /// nearest Q15 value to each configured factor), so the µ-law-domain
    /// muting is pure integer arithmetic and bit-identical on every host.
    pub fn new(config: MutingConfig) -> Self {
        Muting {
            config,
            stage: MuteStage::Full,
            hold_remaining_ns: 0,
            deep_table: mulaw::scaling_table_q15(Q15::from_f64(config.deep_factor)),
            half_table: mulaw::scaling_table_q15(Q15::from_f64(config.half_factor)),
        }
    }

    /// Current stage.
    pub fn stage(&self) -> MuteStage {
        self.stage
    }

    /// Current gain factor.
    pub fn factor(&self) -> f64 {
        match self.stage {
            MuteStage::Full => 1.0,
            MuteStage::Deep => self.config.deep_factor,
            MuteStage::Half => self.config.half_factor,
        }
    }

    /// Current gain as the Q15 value actually applied by the tables.
    pub fn factor_q15(&self) -> Q15 {
        match self.stage {
            MuteStage::Full => Q15::ONE,
            MuteStage::Deep => Q15::from_f64(self.config.deep_factor),
            MuteStage::Half => Q15::from_f64(self.config.half_factor),
        }
    }

    /// Replaces the parameters ("dynamically alterable").
    pub fn set_config(&mut self, config: MutingConfig) {
        self.deep_table = mulaw::scaling_table_q15(Q15::from_f64(config.deep_factor));
        self.half_table = mulaw::scaling_table_q15(Q15::from_f64(config.half_factor));
        self.config = config;
    }

    /// Observes one 2 ms speaker block about to be played and advances the
    /// state machine by one block period.
    pub fn observe_speaker(&mut self, block: &Block) {
        let loud = block.peak() > self.config.threshold;
        if loud {
            // Threshold exceeded: (re-)enter deep mute and rearm the hold.
            self.stage = MuteStage::Deep;
            self.hold_remaining_ns = self.config.deep_hold_ns;
            return;
        }
        match self.stage {
            MuteStage::Full => {}
            MuteStage::Deep => {
                if self.hold_remaining_ns > BLOCK_DURATION_NANOS {
                    self.hold_remaining_ns -= BLOCK_DURATION_NANOS;
                } else {
                    self.stage = MuteStage::Half;
                    self.hold_remaining_ns = self.config.half_hold_ns;
                }
            }
            MuteStage::Half => {
                if self.hold_remaining_ns > BLOCK_DURATION_NANOS {
                    self.hold_remaining_ns -= BLOCK_DURATION_NANOS;
                } else {
                    self.stage = MuteStage::Full;
                    self.hold_remaining_ns = 0;
                }
            }
        }
    }

    /// Scales one microphone block according to the current stage, using
    /// the µ-law lookup tables.
    pub fn apply_mic(&self, block: &Block) -> Block {
        match self.stage {
            MuteStage::Full => *block,
            MuteStage::Deep => apply_table(block, &self.deep_table),
            MuteStage::Half => apply_table(block, &self.half_table),
        }
    }
}

fn apply_table(block: &Block, table: &[u8; 256]) -> Block {
    let mut out = [0u8; pandora_segment::BLOCK_BYTES];
    for (o, &b) in out.iter_mut().zip(block.0.iter()) {
        *o = table[b as usize];
    }
    Block(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mulaw::{decode, encode};
    use pandora_segment::BLOCK_BYTES;

    fn block_of(pcm: i16) -> Block {
        Block([encode(pcm); BLOCK_BYTES])
    }

    fn quiet() -> Block {
        Block::SILENCE
    }

    #[test]
    fn starts_at_full_volume() {
        let m = Muting::new(MutingConfig::default());
        assert_eq!(m.stage(), MuteStage::Full);
        assert_eq!(m.factor(), 1.0);
        let b = block_of(1_000);
        assert_eq!(m.apply_mic(&b), b);
    }

    #[test]
    fn loud_speaker_triggers_deep_mute() {
        let mut m = Muting::new(MutingConfig::default());
        m.observe_speaker(&block_of(20_000));
        assert_eq!(m.stage(), MuteStage::Deep);
        let out = m.apply_mic(&block_of(10_000));
        let got = decode(out.0[0]);
        let want = (decode(encode(10_000)) as f64 * 0.2) as i32;
        assert!((got - want).abs() < want / 4 + 32, "got {got} want {want}");
    }

    #[test]
    fn quiet_speaker_never_mutes() {
        let mut m = Muting::new(MutingConfig::default());
        for _ in 0..100 {
            m.observe_speaker(&block_of(1_000));
        }
        assert_eq!(m.stage(), MuteStage::Full);
    }

    #[test]
    fn figure_4_1_schedule() {
        // One loud block, then silence: deep for 22ms, half for 22ms, full.
        let mut m = Muting::new(MutingConfig::default());
        m.observe_speaker(&block_of(20_000));
        let mut stages = Vec::new();
        for _ in 0..25 {
            stages.push(m.stage());
            m.observe_speaker(&quiet());
        }
        // 11 blocks deep (22ms), 11 blocks half (22ms), then full.
        let deep = stages.iter().filter(|&&s| s == MuteStage::Deep).count();
        let half = stages.iter().filter(|&&s| s == MuteStage::Half).count();
        assert_eq!(deep, 11, "stages = {stages:?}");
        assert_eq!(half, 11);
        assert_eq!(m.stage(), MuteStage::Full);
    }

    #[test]
    fn retrigger_during_hold_rearms() {
        let mut m = Muting::new(MutingConfig::default());
        m.observe_speaker(&block_of(20_000));
        for _ in 0..5 {
            m.observe_speaker(&quiet());
        }
        // Still in deep hold; new loud block restarts the full 22ms.
        m.observe_speaker(&block_of(20_000));
        let mut blocks_until_half = 0;
        while m.stage() == MuteStage::Deep {
            m.observe_speaker(&quiet());
            blocks_until_half += 1;
        }
        assert_eq!(blocks_until_half, 11);
    }

    #[test]
    fn half_stage_scales_by_50_percent() {
        let mut m = Muting::new(MutingConfig::default());
        m.observe_speaker(&block_of(20_000));
        for _ in 0..12 {
            m.observe_speaker(&quiet());
        }
        assert_eq!(m.stage(), MuteStage::Half);
        let out = m.apply_mic(&block_of(10_000));
        let got = decode(out.0[0]);
        let want = decode(encode(10_000)) / 2;
        assert!((got - want).abs() < want / 4 + 32, "got {got} want {want}");
    }

    #[test]
    fn config_is_dynamically_alterable() {
        let mut m = Muting::new(MutingConfig::default());
        m.set_config(MutingConfig {
            threshold: 100,
            ..MutingConfig::default()
        });
        m.observe_speaker(&block_of(500));
        assert_eq!(m.stage(), MuteStage::Deep);
    }

    #[test]
    fn q15_tables_track_old_float_tables_within_one_code() {
        // The figure-4.1 factors applied through Q15 stay within one
        // µ-law code of the old float-built tables on every byte.
        let cfg = MutingConfig::default();
        for factor in [cfg.deep_factor, cfg.half_factor] {
            let float_table = mulaw::scaling_table(factor);
            let q15_table = mulaw::scaling_table_q15(Q15::from_f64(factor));
            for b in 0u16..=255 {
                let d = (float_table[b as usize] as i32 - q15_table[b as usize] as i32).abs();
                assert!(d <= 1, "factor={factor} b={b}");
            }
        }
    }

    #[test]
    fn factor_q15_matches_factor() {
        let mut m = Muting::new(MutingConfig::default());
        assert_eq!(m.factor_q15(), Q15::ONE);
        m.observe_speaker(&block_of(20_000));
        assert_eq!(m.factor_q15(), Q15::from_f64(m.factor()));
    }

    #[test]
    fn reaction_within_one_block() {
        // The paper: "we have at least 4ms in which to react". In this
        // model the mute takes effect on the very block that trips the
        // threshold (0ms lag), comfortably within the 4ms budget.
        let mut m = Muting::new(MutingConfig::default());
        m.observe_speaker(&block_of(30_000));
        let out = m.apply_mic(&block_of(10_000));
        assert!(decode(out.0[0]) < decode(encode(10_000)) / 2);
    }
}
