//! G.711 µ-law companding — the software equivalent of Pandora's
//! "standard 8-bit µ-law codec" sampling at 125 µs intervals (§3.2).

/// Largest linear magnitude representable before clipping.
pub const CLIP: i32 = 32_635;
const BIAS: i32 = 0x84;

/// Encodes one 16-bit linear PCM sample to 8-bit µ-law.
///
/// Branch-free: the data-dependent segment search of
/// [`encode_reference`] becomes a `leading_zeros` (one instruction on
/// every target that matters), so the encoder pipelines cleanly inside
/// the chunked mixing loops. Byte-identical to the reference for every
/// input — pinned exhaustively by `encode_matches_reference`.
///
/// # Examples
///
/// ```
/// use pandora_audio::mulaw::{encode, decode};
/// let byte = encode(1000);
/// let back = decode(byte);
/// assert!((back - 1000).abs() < 64);
/// ```
pub fn encode(pcm: i16) -> u8 {
    let sign = (((pcm as u16) >> 8) as u8) & 0x80;
    let mag = (pcm as i32).unsigned_abs().min(CLIP as u32) + BIAS as u32;
    // Exponent = index of the segment containing mag: 0 for mag <= 0xFF,
    // up to 7 for the top segment. `mag | 0xFF` pins the zero-exponent
    // case so the subtraction never underflows.
    let exponent = 24 - (mag | 0xFF).leading_zeros();
    let mantissa = ((mag >> (exponent + 3)) & 0x0F) as u8;
    !(sign | ((exponent as u8) << 4) | mantissa)
}

/// The original loop-based µ-law encoder, kept verbatim as the
/// conformance oracle for [`encode`].
pub fn encode_reference(pcm: i16) -> u8 {
    let mut x = pcm as i32;
    let sign: u8 = if x < 0 {
        x = -x;
        0x80
    } else {
        0
    };
    if x > CLIP {
        x = CLIP;
    }
    x += BIAS;
    // Exponent = index of the segment containing x (7 segments above 0xFF).
    let mut exponent: u8 = 7;
    let mut mask = 0x4000;
    while exponent > 0 && (x & mask) == 0 {
        exponent -= 1;
        mask >>= 1;
    }
    let mantissa = ((x >> (exponent as i32 + 3)) & 0x0F) as u8;
    !(sign | (exponent << 4) | mantissa)
}

// The expansion formula, const so the flat LUT below can be built at
// compile time.
const fn decode_formula(byte: u8) -> i32 {
    let y = !byte;
    let sign = y & 0x80;
    let exponent = (y >> 4) & 0x07;
    let mantissa = (y & 0x0F) as i32;
    let magnitude = (((mantissa << 3) + BIAS) << exponent) - BIAS;
    if sign != 0 {
        -magnitude
    } else {
        magnitude
    }
}

// Flat compile-time expansion table: decode becomes a single indexed
// load, which the autovectorizer turns into gathers inside the chunked
// mixing loops.
const DECODE_LUT: [i32; 256] = {
    let mut t = [0i32; 256];
    let mut b = 0;
    while b < 256 {
        t[b] = decode_formula(b as u8);
        b += 1;
    }
    t
};

/// Decodes one 8-bit µ-law byte to 16-bit linear PCM (flat-LUT path).
pub fn decode(byte: u8) -> i32 {
    DECODE_LUT[byte as usize]
}

/// The formula-based µ-law decoder, kept as the conformance oracle for
/// the [`decode`] LUT.
pub fn decode_reference(byte: u8) -> i32 {
    decode_formula(byte)
}

/// µ-law silence: the encoding of linear zero.
pub const SILENCE: u8 = 0xFF;

/// A 256-entry decode table for fast per-sample paths (the hardware codec
/// and the muting lookup tables of §4.3 work in the µ-law domain).
pub fn decode_table() -> [i32; 256] {
    DECODE_LUT
}

/// Builds a µ-law → µ-law table that scales samples by `factor` in the
/// linear domain — exactly the paper's muting implementation: "the muting
/// is performed by lookup tables that directly scale the 8-bit µ-law
/// samples" (§4.3).
pub fn scaling_table(factor: f64) -> [u8; 256] {
    let mut t = [0u8; 256];
    for (b, slot) in t.iter_mut().enumerate() {
        let linear = decode(b as u8) as f64 * factor;
        *slot = encode(linear.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16);
    }
    t
}

/// Builds the µ-law scaling table from a Q15 fixed-point gain — the
/// integer replacement for [`scaling_table`]. All arithmetic is exact
/// integer work with one explicit rounding step, so the table is
/// bit-identical on every host; with a gain exactly representable in
/// Q15 it equals `scaling_table(gain.to_f64())`.
pub fn scaling_table_q15(gain: crate::q15::Q15) -> [u8; 256] {
    let mut t = [0u8; 256];
    for (b, slot) in t.iter_mut().enumerate() {
        let linear = gain.scale(decode(b as u8));
        *slot = encode(linear.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
    }
    t
}

/// Encodes a slice of linear samples.
pub fn encode_slice(pcm: &[i16]) -> Vec<u8> {
    pcm.iter().map(|&s| encode(s)).collect()
}

/// Decodes a slice of µ-law bytes.
pub fn decode_slice(bytes: &[u8]) -> Vec<i32> {
    bytes.iter().map(|&b| decode(b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_silence() {
        assert_eq!(encode(0), SILENCE);
        assert_eq!(decode(SILENCE), 0);
    }

    #[test]
    fn decode_encode_is_identity_on_codewords() {
        // Every µ-law codeword decodes to a value that re-encodes to itself
        // (up to the +0/-0 pair).
        for b in 0u16..=255 {
            let b = b as u8;
            let lin = decode(b);
            let lin16 = lin.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
            let b2 = encode(lin16);
            assert_eq!(decode(b2), decode(b), "codeword {b:#x}");
        }
    }

    #[test]
    fn round_trip_error_bounded() {
        // µ-law quantisation error grows with magnitude; the relative error
        // is bounded by the segment step (~3%).
        for pcm in (-32000i32..32000).step_by(37) {
            let pcm = pcm as i16;
            let out = decode(encode(pcm));
            let err = (out - pcm as i32).abs();
            let allowed = 16 + (pcm as i32).abs() / 16;
            assert!(err <= allowed, "pcm={pcm} out={out} err={err}");
        }
    }

    #[test]
    fn sign_symmetry() {
        for pcm in [1i16, 100, 1000, 10000, 32000] {
            assert_eq!(decode(encode(pcm)), -decode(encode(-pcm)));
        }
    }

    #[test]
    fn clipping_saturates() {
        assert_eq!(decode(encode(i16::MAX)), decode(encode(CLIP as i16)));
        assert_eq!(decode(encode(i16::MIN)), -decode(encode(CLIP as i16)));
    }

    #[test]
    fn monotonic_on_positives() {
        let mut last = -1;
        for pcm in (0..32767i32).step_by(11) {
            let out = decode(encode(pcm as i16));
            assert!(out >= last, "non-monotonic at {pcm}");
            last = out;
        }
    }

    #[test]
    fn scaling_table_halves_amplitude() {
        let t = scaling_table(0.5);
        for b in 0u16..=255 {
            let b = b as u8;
            let orig = decode(b);
            let scaled = decode(t[b as usize]);
            // Within one quantisation step of half amplitude.
            let target = orig / 2;
            let tol = 16 + orig.abs() / 12;
            assert!(
                (scaled - target).abs() <= tol,
                "b={b} orig={orig} scaled={scaled}"
            );
        }
    }

    #[test]
    fn scaling_table_zero_mutes_fully() {
        let t = scaling_table(0.0);
        for b in 0u16..=255 {
            assert_eq!(decode(t[b as usize]), 0);
        }
    }

    #[test]
    fn unity_table_preserves_values() {
        let t = scaling_table(1.0);
        for b in 0u16..=255 {
            assert_eq!(decode(t[b as usize]), decode(b as u8));
        }
    }

    #[test]
    fn slice_helpers() {
        let pcm: Vec<i16> = vec![0, 1000, -1000, 20000];
        let enc = encode_slice(&pcm);
        let dec = decode_slice(&enc);
        assert_eq!(dec.len(), 4);
        assert_eq!(dec[0], 0);
        assert!(dec[3] > 18_000);
    }

    #[test]
    fn decode_table_matches_decode() {
        let t = decode_table();
        for b in 0u16..=255 {
            assert_eq!(t[b as usize], decode(b as u8));
        }
    }

    #[test]
    fn encode_matches_reference_exhaustively() {
        // The branch-free encoder must agree with the loop-based oracle
        // on every one of the 65536 inputs.
        for pcm in i16::MIN..=i16::MAX {
            assert_eq!(encode(pcm), encode_reference(pcm), "pcm={pcm}");
        }
    }

    #[test]
    fn decode_matches_reference_exhaustively() {
        for b in 0u16..=255 {
            assert_eq!(decode(b as u8), decode_reference(b as u8), "b={b}");
        }
    }

    #[test]
    fn q15_scaling_table_matches_float_table_on_exact_gains() {
        use crate::q15::Q15;
        // Gains exactly representable in Q15 give byte-identical tables.
        for raw in [0, 1 << 14, 3 << 13, 1 << 15] {
            let q = Q15::from_raw(raw);
            assert_eq!(scaling_table_q15(q), scaling_table(q.to_f64()), "raw={raw}");
        }
    }

    #[test]
    fn q15_scaling_table_tracks_float_table_within_one_code() {
        use crate::q15::Q15;
        // The figure-4.1 factors (0.2, 0.5) are not exactly representable;
        // the nearest Q15 gain lands within one µ-law code everywhere.
        for factor in [0.2, 0.5] {
            let ft = scaling_table(factor);
            let qt = scaling_table_q15(Q15::from_f64(factor));
            for b in 0u16..=255 {
                let d = (ft[b as usize] as i32 - qt[b as usize] as i32).abs();
                assert!(
                    d <= 1,
                    "factor={factor} b={b} float={} q15={}",
                    ft[b as usize],
                    qt[b as usize]
                );
            }
        }
    }
}
