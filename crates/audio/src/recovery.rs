//! Loss concealment (§3.8).
//!
//! "When audio samples have to be inserted, occasionally repeating the
//! last byte sample is again virtually undetectable. Replaying the last
//! 2ms block occasionally is perfectly acceptable for speech, and
//! replaying 2ms blocks frequently gives a garbled effect. We replay the
//! last 2ms block, and try to ensure that it does not happen frequently."

use crate::block::Block;

/// Policy for filling a missing 2 ms block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Concealment {
    /// Insert µ-law silence ("equivalent to inserting 2ms of zero
    /// amplitude samples", §3.7.2).
    Zero,
    /// Replay the last delivered block (Pandora's choice, §3.8).
    RepeatLast,
}

/// Per-stream concealment state.
#[derive(Debug, Clone)]
pub struct Concealer {
    policy: Concealment,
    last: Block,
    delivered: u64,
    concealed: u64,
}

impl Concealer {
    /// Creates a concealer with the given policy.
    pub fn new(policy: Concealment) -> Self {
        Concealer {
            policy,
            last: Block::SILENCE,
            delivered: 0,
            concealed: 0,
        }
    }

    /// Passes a real block through, remembering it for future gaps.
    pub fn deliver(&mut self, block: Block) -> Block {
        self.last = block;
        self.delivered += 1;
        block
    }

    /// Produces a substitute for a missing block.
    pub fn conceal(&mut self) -> Block {
        self.concealed += 1;
        match self.policy {
            Concealment::Zero => Block::SILENCE,
            Concealment::RepeatLast => self.last,
        }
    }

    /// Blocks delivered unmodified.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Blocks synthesised to cover gaps.
    pub fn concealed(&self) -> u64 {
        self.concealed
    }

    /// Fraction of output blocks that were concealed.
    pub fn concealment_fraction(&self) -> f64 {
        let total = self.delivered + self.concealed;
        if total == 0 {
            0.0
        } else {
            self.concealed as f64 / total as f64
        }
    }
}

/// Applies a deterministic periodic drop pattern to a block stream and
/// conceals the gaps — the workload of experiment E9.
///
/// Every `period`-th block (1-based) is treated as lost. Returns the
/// reconstructed stream, the concealer statistics, and keeps lengths equal
/// to the input.
pub fn drop_and_conceal(
    blocks: &[Block],
    period: usize,
    policy: Concealment,
) -> (Vec<Block>, Concealer) {
    assert!(period > 0, "drop period must be non-zero");
    let mut c = Concealer::new(policy);
    let mut out = Vec::with_capacity(blocks.len());
    for (i, b) in blocks.iter().enumerate() {
        if (i + 1) % period == 0 {
            out.push(c.conceal());
        } else {
            out.push(c.deliver(*b));
        }
    }
    (out, c)
}

/// Drops individual *samples* (not whole blocks) with the given 1-based
/// period, repairing each by repeating the previous sample — the paper's
/// "single byte samples dropped occasionally" case.
pub fn drop_samples_repeat_last(samples: &[u8], period: usize) -> Vec<u8> {
    assert!(period > 0, "drop period must be non-zero");
    let mut out = Vec::with_capacity(samples.len());
    let mut last = crate::mulaw::SILENCE;
    for (i, &s) in samples.iter().enumerate() {
        if (i + 1) % period == 0 {
            out.push(last);
        } else {
            out.push(s);
            last = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandora_segment::BLOCK_BYTES;

    fn marked(i: u8) -> Block {
        Block([i; BLOCK_BYTES])
    }

    #[test]
    fn zero_policy_inserts_silence() {
        let mut c = Concealer::new(Concealment::Zero);
        c.deliver(marked(1));
        assert_eq!(c.conceal(), Block::SILENCE);
    }

    #[test]
    fn repeat_policy_replays_last_block() {
        let mut c = Concealer::new(Concealment::RepeatLast);
        c.deliver(marked(1));
        c.deliver(marked(2));
        assert_eq!(c.conceal(), marked(2));
        // A later delivery updates the replay source.
        c.deliver(marked(3));
        assert_eq!(c.conceal(), marked(3));
    }

    #[test]
    fn repeat_before_any_delivery_is_silence() {
        let mut c = Concealer::new(Concealment::RepeatLast);
        assert_eq!(c.conceal(), Block::SILENCE);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Concealer::new(Concealment::RepeatLast);
        for i in 0..9 {
            c.deliver(marked(i));
        }
        c.conceal();
        assert_eq!(c.delivered(), 9);
        assert_eq!(c.concealed(), 1);
        assert!((c.concealment_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn drop_and_conceal_preserves_length() {
        let blocks: Vec<Block> = (0..100).map(|i| marked(i as u8)).collect();
        let (out, c) = drop_and_conceal(&blocks, 10, Concealment::RepeatLast);
        assert_eq!(out.len(), 100);
        assert_eq!(c.concealed(), 10);
        // Block 9 (index) was dropped and replaced by block 8's contents.
        assert_eq!(out[9], marked(8));
        assert_eq!(out[10], marked(10));
    }

    #[test]
    fn sample_drop_repeats_previous() {
        let samples: Vec<u8> = (0..10).collect();
        let out = drop_samples_repeat_last(&samples, 5);
        // Samples at 1-based positions 5 and 10 replaced by predecessors.
        assert_eq!(out, vec![0, 1, 2, 3, 3, 5, 6, 7, 8, 8]);
    }

    #[test]
    fn empty_fraction_is_zero() {
        let c = Concealer::new(Concealment::Zero);
        assert_eq!(c.concealment_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = drop_and_conceal(&[], 0, Concealment::Zero);
    }
}
