//! # pandora-audio — the Pandora audio path primitives
//!
//! Implements §3.2, §3.5, §3.8 and §4.3 of the paper:
//!
//! * [`mulaw`] — the 8-bit µ-law codec (software stand-in for the codec
//!   chip), including the µ-law-domain scaling tables used for muting;
//! * [`Block`] / [`SegmentAssembler`] — 16-sample 2 ms blocks and their
//!   grouping into segments (1 / 2 / 12 blocks per segment);
//! * [`mix_blocks`] — linear-domain software mixing of any number of
//!   streams, plus the [`CpuProfile`] cost model calibrated to the paper's
//!   published capacities (5 plain / 3 full streams on the T425);
//! * [`Muting`] — the two-stage echo-suppression state machine of
//!   figure 4.1;
//! * [`gen`] — deterministic tone / violin / speech / noise sources used
//!   by the experiments;
//! * [`recovery`] — loss concealment (zero-fill vs replay-last-block);
//! * [`quality`] — SNR and discontinuity metrics that reproduce the
//!   paper's perceptual ranking of degradations.

pub mod gen;
pub mod mulaw;
pub mod q15;
pub mod quality;
pub mod recovery;

mod block;
mod mixer;
mod muting;

pub use block::{segment_blocks, Block, SegmentAssembler};
pub use mixer::{mix_blocks, mix_blocks_scalar, mix_blocks_scaled, CpuProfile};
pub use muting::{MuteStage, Muting, MutingConfig};
pub use q15::Q15;
pub use recovery::{Concealer, Concealment};
