//! Synthetic audio sources.
//!
//! The paper's evaluation leans on perceptual observations across signal
//! classes: dropped samples were "undetectable except during solo violin
//! pieces", dropped blocks "noticeable in most music, but rarely in
//! speech" (§3.8). These generators produce deterministic signals of those
//! classes so the loss-concealment experiment (E9) can rank distortion the
//! same way.

use crate::block::Block;
use crate::mulaw;
use pandora_segment::{BLOCK_BYTES, SAMPLES_PER_BLOCK};

/// Sample rate used by all generators (the codec's 8 kHz).
pub const SAMPLE_RATE: f64 = 8_000.0;

/// A deterministic mono signal source at 8 kHz.
pub trait Signal {
    /// Produces the next linear PCM sample.
    fn next_sample(&mut self) -> i16;

    /// Produces the next 2 ms block in linear form.
    fn next_block_linear(&mut self) -> [i16; SAMPLES_PER_BLOCK] {
        let mut out = [0i16; SAMPLES_PER_BLOCK];
        for s in &mut out {
            *s = self.next_sample();
        }
        out
    }

    /// Produces the next 2 ms block encoded as µ-law.
    fn next_block(&mut self) -> Block {
        let linear = self.next_block_linear();
        let mut out = [0u8; BLOCK_BYTES];
        for (o, &s) in out.iter_mut().zip(linear.iter()) {
            *o = mulaw::encode(s);
        }
        Block(out)
    }
}

/// Pure silence.
#[derive(Debug, Default, Clone)]
pub struct Silence;

impl Signal for Silence {
    fn next_sample(&mut self) -> i16 {
        0
    }
}

/// A steady sine tone (the "solo violin" stand-in: a sustained pure tone
/// on which periodic artifacts are maximally audible).
#[derive(Debug, Clone)]
pub struct Tone {
    phase: f64,
    step: f64,
    amplitude: f64,
}

impl Tone {
    /// Creates a tone at `freq` Hz with linear `amplitude`.
    pub fn new(freq: f64, amplitude: f64) -> Self {
        Tone {
            phase: 0.0,
            step: 2.0 * std::f64::consts::PI * freq / SAMPLE_RATE,
            amplitude,
        }
    }
}

impl Signal for Tone {
    fn next_sample(&mut self) -> i16 {
        let v = self.phase.sin() * self.amplitude;
        self.phase += self.step;
        if self.phase > 2.0 * std::f64::consts::PI {
            self.phase -= 2.0 * std::f64::consts::PI;
        }
        v as i16
    }
}

/// A violin-like sustained tone with harmonics and slow vibrato.
#[derive(Debug, Clone)]
pub struct Violin {
    t: f64,
    freq: f64,
    amplitude: f64,
}

impl Violin {
    /// Creates a violin-like signal at `freq` Hz.
    pub fn new(freq: f64, amplitude: f64) -> Self {
        Violin {
            t: 0.0,
            freq,
            amplitude,
        }
    }
}

impl Signal for Violin {
    fn next_sample(&mut self) -> i16 {
        let vibrato = 1.0 + 0.004 * (2.0 * std::f64::consts::PI * 5.5 * self.t).sin();
        let f = self.freq * vibrato;
        let w = 2.0 * std::f64::consts::PI * f * self.t;
        // Sawtooth-ish harmonic stack typical of bowed strings.
        let v = w.sin() + 0.55 * (2.0 * w).sin() + 0.35 * (3.0 * w).sin() + 0.2 * (4.0 * w).sin();
        self.t += 1.0 / SAMPLE_RATE;
        (v / 2.1 * self.amplitude) as i16
    }
}

/// A speech-like signal: voiced bursts (glottal-pulse-excited formants)
/// separated by pauses, deterministic from a seed.
#[derive(Debug, Clone)]
pub struct Speech {
    t: f64,
    rng: u64,
    /// Remaining samples in the current phase.
    remaining: u32,
    voiced: bool,
    pitch: f64,
    formant: f64,
}

impl Speech {
    /// Creates a speech-like source from a seed.
    pub fn new(seed: u64) -> Self {
        let mut s = Speech {
            t: 0.0,
            rng: seed.wrapping_mul(0x9E3779B97F4A7C15).max(1),
            remaining: 0,
            voiced: false,
            pitch: 120.0,
            formant: 700.0,
        };
        s.next_phase();
        s
    }

    fn rand(&mut self) -> f64 {
        // xorshift64*.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_phase(&mut self) {
        self.voiced = !self.voiced;
        if self.voiced {
            // 80-300ms voiced burst with a fresh pitch and formant.
            self.remaining = (SAMPLE_RATE * (0.08 + 0.22 * self.rand())) as u32;
            self.pitch = 90.0 + 80.0 * self.rand();
            self.formant = 400.0 + 1800.0 * self.rand();
        } else {
            // 40-200ms pause.
            self.remaining = (SAMPLE_RATE * (0.04 + 0.16 * self.rand())) as u32;
        }
    }
}

impl Signal for Speech {
    fn next_sample(&mut self) -> i16 {
        if self.remaining == 0 {
            self.next_phase();
        }
        self.remaining -= 1;
        let out = if self.voiced {
            let w = 2.0 * std::f64::consts::PI * self.t;
            // Pitch pulse train shaped by a formant resonance, with an
            // envelope to avoid clicks at burst edges.
            let pulse = (w * self.pitch).sin().powi(5);
            let res = (w * self.formant).sin();
            let env = 0.6 + 0.4 * (w * 3.0).sin();
            8_000.0 * pulse * (0.5 + 0.5 * res) * env
        } else {
            0.0
        };
        self.t += 1.0 / SAMPLE_RATE;
        out as i16
    }
}

/// Deterministic white noise.
#[derive(Debug, Clone)]
pub struct Noise {
    rng: u64,
    amplitude: f64,
}

impl Noise {
    /// Creates white noise with the given amplitude and seed.
    pub fn new(amplitude: f64, seed: u64) -> Self {
        Noise {
            rng: seed.max(1),
            amplitude,
        }
    }
}

impl Signal for Noise {
    fn next_sample(&mut self) -> i16 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let u = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        ((u * 2.0 - 1.0) * self.amplitude) as i16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_is_all_zero() {
        let mut s = Silence;
        assert_eq!(s.next_block_linear(), [0i16; SAMPLES_PER_BLOCK]);
        assert_eq!(s.next_block(), Block::SILENCE);
    }

    #[test]
    fn tone_has_expected_period() {
        // A 1kHz tone at 8kHz sampling has period 8: sample 0 and 8 match.
        let mut t = Tone::new(1_000.0, 10_000.0);
        let samples: Vec<i16> = (0..16).map(|_| t.next_sample()).collect();
        assert!((samples[0] as i32 - samples[8] as i32).abs() < 100);
        assert!(samples.iter().any(|&s| s > 5_000));
    }

    #[test]
    fn tone_amplitude_bounded() {
        let mut t = Tone::new(440.0, 12_000.0);
        for _ in 0..8_000 {
            let s = t.next_sample();
            assert!(s.abs() <= 12_000);
        }
    }

    #[test]
    fn violin_is_loud_and_periodicish() {
        let mut v = Violin::new(440.0, 10_000.0);
        let mut peak = 0i16;
        for _ in 0..8_000 {
            peak = peak.max(v.next_sample().abs());
        }
        assert!(peak > 6_000, "peak = {peak}");
    }

    #[test]
    fn speech_alternates_bursts_and_pauses() {
        let mut s = Speech::new(42);
        let mut active_blocks = 0;
        let mut quiet_blocks = 0;
        for _ in 0..1_000 {
            let b = s.next_block();
            if b.peak() > 500 {
                active_blocks += 1;
            } else {
                quiet_blocks += 1;
            }
        }
        assert!(active_blocks > 200, "active = {active_blocks}");
        assert!(quiet_blocks > 100, "quiet = {quiet_blocks}");
    }

    #[test]
    fn speech_is_deterministic_per_seed() {
        let mut a = Speech::new(7);
        let mut b = Speech::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_sample(), b.next_sample());
        }
        let mut c = Speech::new(8);
        let differs = (0..1000).any(|_| a.next_sample() != c.next_sample());
        assert!(differs);
    }

    #[test]
    fn noise_spans_both_signs() {
        let mut n = Noise::new(5_000.0, 3);
        let samples: Vec<i16> = (0..1_000).map(|_| n.next_sample()).collect();
        assert!(samples.iter().any(|&s| s > 1_000));
        assert!(samples.iter().any(|&s| s < -1_000));
    }
}
