//! Audio quality metrics for the loss-concealment experiments (E9).
//!
//! The paper ranks degradations perceptually (§3.8): occasional dropped
//! samples < occasional dropped blocks < frequent drops ("gravelly").
//! These metrics give the same ordering objectively: signal-to-distortion
//! ratio against the lossless reference, plus discontinuity counts that
//! act as a proxy for audible clicks.

use crate::block::Block;
use crate::mulaw;

/// Signal-to-distortion ratio in dB between a reference and a degraded
/// µ-law block stream of equal length.
///
/// Returns `f64::INFINITY` for identical streams.
///
/// # Panics
///
/// Panics if the streams differ in length.
pub fn snr_db(reference: &[Block], degraded: &[Block]) -> f64 {
    assert_eq!(
        reference.len(),
        degraded.len(),
        "streams must be the same length"
    );
    let mut signal = 0f64;
    let mut noise = 0f64;
    for (r, d) in reference.iter().zip(degraded.iter()) {
        for (&rb, &db) in r.0.iter().zip(d.0.iter()) {
            let rs = mulaw::decode(rb) as f64;
            let ds = mulaw::decode(db) as f64;
            signal += rs * rs;
            noise += (rs - ds) * (rs - ds);
        }
    }
    if noise == 0.0 {
        f64::INFINITY
    } else if signal == 0.0 {
        0.0
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Counts sample-to-sample discontinuities larger than `threshold` in the
/// linear domain — a proxy for audible clicks at block boundaries.
pub fn discontinuities(blocks: &[Block], threshold: i32) -> usize {
    let mut count = 0;
    let mut prev: Option<i32> = None;
    for b in blocks {
        for &s in b.0.iter() {
            let v = mulaw::decode(s);
            if let Some(p) = prev {
                if (v - p).abs() > threshold {
                    count += 1;
                }
            }
            prev = Some(v);
        }
    }
    count
}

/// Counts 2 ms energy holes: blocks where the degraded stream's RMS
/// collapses below a tenth of the reference's (and the reference block was
/// audible at all). This is the objective face of the paper's complaint
/// about zero-fill — "inserting 2ms of zero amplitude samples" cuts a
/// hole in the sound, where replaying the last block preserves the energy
/// envelope.
///
/// # Panics
///
/// Panics if the streams differ in length.
pub fn energy_holes(reference: &[Block], degraded: &[Block]) -> usize {
    assert_eq!(
        reference.len(),
        degraded.len(),
        "streams must be the same length"
    );
    let rms = |b: &Block| {
        let sum: f64 =
            b.0.iter()
                .map(|&s| {
                    let v = mulaw::decode(s) as f64;
                    v * v
                })
                .sum();
        (sum / b.0.len() as f64).sqrt()
    };
    reference
        .iter()
        .zip(degraded.iter())
        .filter(|(r, d)| {
            let rr = rms(r);
            rr > 500.0 && rms(d) < rr * 0.1
        })
        .count()
}

/// Fraction of blocks whose content differs from the reference — the
/// "gravelly" proxy: repeated replacement of many blocks garbles speech.
pub fn affected_block_fraction(reference: &[Block], degraded: &[Block]) -> f64 {
    assert_eq!(
        reference.len(),
        degraded.len(),
        "streams must be the same length"
    );
    if reference.is_empty() {
        return 0.0;
    }
    let n = reference
        .iter()
        .zip(degraded.iter())
        .filter(|(r, d)| r != d)
        .count();
    n as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Signal, Tone};
    use crate::recovery::{drop_and_conceal, Concealment};

    fn tone_blocks(n: usize) -> Vec<Block> {
        let mut t = Tone::new(440.0, 10_000.0);
        (0..n).map(|_| t.next_block()).collect()
    }

    #[test]
    fn identical_streams_have_infinite_snr() {
        let b = tone_blocks(10);
        assert_eq!(snr_db(&b, &b), f64::INFINITY);
    }

    #[test]
    fn silence_reference_gives_zero() {
        let b = vec![Block::SILENCE; 4];
        let d = tone_blocks(4);
        assert_eq!(snr_db(&b, &d), 0.0);
    }

    #[test]
    fn snr_decreases_with_loss_rate() {
        let reference = tone_blocks(500);
        let (light, _) = drop_and_conceal(&reference, 50, Concealment::RepeatLast);
        let (heavy, _) = drop_and_conceal(&reference, 5, Concealment::RepeatLast);
        let snr_light = snr_db(&reference, &light);
        let snr_heavy = snr_db(&reference, &heavy);
        assert!(
            snr_light > snr_heavy + 3.0,
            "light {snr_light:.1}dB should beat heavy {snr_heavy:.1}dB"
        );
    }

    #[test]
    fn repeat_beats_zero_fill_on_tone() {
        // Replaying the last block keeps the waveform shape; silence tears
        // a hole. The paper prefers replay for exactly this reason.
        let reference = tone_blocks(500);
        let (repeat, _) = drop_and_conceal(&reference, 10, Concealment::RepeatLast);
        let (zero, _) = drop_and_conceal(&reference, 10, Concealment::Zero);
        assert!(snr_db(&reference, &repeat) > snr_db(&reference, &zero));
    }

    #[test]
    fn zero_fill_creates_discontinuities() {
        let reference = tone_blocks(100);
        let (zero, _) = drop_and_conceal(&reference, 10, Concealment::Zero);
        let clean = discontinuities(&reference, 9_000);
        let torn = discontinuities(&zero, 9_000);
        assert!(torn > clean, "torn {torn} clean {clean}");
    }

    #[test]
    fn affected_fraction_matches_drop_rate() {
        let reference = tone_blocks(100);
        let (d, _) = drop_and_conceal(&reference, 10, Concealment::Zero);
        let f = affected_block_fraction(&reference, &d);
        assert!((f - 0.1).abs() <= 0.02, "f = {f}");
    }

    #[test]
    fn energy_holes_distinguish_zero_from_replay() {
        let reference = tone_blocks(200);
        let (zero, _) = drop_and_conceal(&reference, 10, Concealment::Zero);
        let (repeat, _) = drop_and_conceal(&reference, 10, Concealment::RepeatLast);
        let zero_holes = energy_holes(&reference, &zero);
        let repeat_holes = energy_holes(&reference, &repeat);
        assert_eq!(zero_holes, 20, "every dropped loud block is a hole");
        assert_eq!(repeat_holes, 0, "replay preserves the energy envelope");
    }

    #[test]
    fn empty_streams() {
        assert_eq!(affected_block_fraction(&[], &[]), 0.0);
        assert_eq!(snr_db(&[], &[]), f64::INFINITY);
    }
}
