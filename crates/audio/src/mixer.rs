//! Software audio mixing.
//!
//! §2.0: "accompanying audio streams are mixed by software in real-time on
//! the destination transputer. No limit is placed on the number of
//! incoming streams that can be mixed, save that imposed by system
//! bandwidths and CPU resources." Mixing decodes each µ-law block to
//! linear, sums with saturation, and re-encodes.

use crate::block::Block;
use crate::mulaw;
use crate::q15::{round_q15, Q15};
use pandora_segment::BLOCK_BYTES;

/// Mixes any number of µ-law blocks into one (linear-domain saturating sum).
///
/// An empty input yields silence — "if the clawback buffer is empty at
/// this time, then it is not included in the mixing" (§3.7.2), and when no
/// stream contributes the codec still needs a block.
///
/// The whole 16-sample block is accumulated through the flat decode LUT
/// and the branch-free encoder, fixed-size loops the autovectorizer can
/// unroll; [`mix_blocks_scalar`] keeps the original per-sample code as
/// the conformance oracle and the two are byte-identical on every input.
pub fn mix_blocks<'a>(blocks: impl IntoIterator<Item = &'a Block>) -> Block {
    let mut acc = [0i32; BLOCK_BYTES];
    for block in blocks {
        for (a, &b) in acc.iter_mut().zip(block.0.iter()) {
            *a += mulaw::decode(b);
        }
    }
    let mut out = [0u8; BLOCK_BYTES];
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = mulaw::encode(a.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
    }
    Block(out)
}

/// The conformance oracle for [`mix_blocks`]: same accumulate/saturate
/// semantics expressed through the reference (formula/loop) codec.
pub fn mix_blocks_scalar<'a>(blocks: impl IntoIterator<Item = &'a Block>) -> Block {
    let mut acc = [0i32; BLOCK_BYTES];
    for block in blocks {
        for (a, &b) in acc.iter_mut().zip(block.0.iter()) {
            *a += mulaw::decode_reference(b);
        }
    }
    let mut out = [0u8; BLOCK_BYTES];
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        *o = mulaw::encode_reference(a.clamp(i16::MIN as i32, i16::MAX as i32) as i16);
    }
    Block(out)
}

/// Per-stream gain applied during mixing (e.g. muting factors).
///
/// Gains are Q15 fixed point: each sample contributes its exact
/// `decode(b) * gain.raw()` product to an `i64` accumulator and one
/// explicit rounding step (half away from zero, like `f64::round`) runs
/// per output sample — mirroring the single-rounding shape of the old
/// float path while being bit-identical on every host. With gains
/// exactly representable in Q15, output matches the old `f64` path.
pub fn mix_blocks_scaled<'a>(blocks: impl IntoIterator<Item = (&'a Block, Q15)>) -> Block {
    let mut acc = [0i64; BLOCK_BYTES];
    for (block, gain) in blocks {
        let g = gain.raw() as i64;
        for (a, &b) in acc.iter_mut().zip(block.0.iter()) {
            *a += mulaw::decode(b) as i64 * g;
        }
    }
    let mut out = [0u8; BLOCK_BYTES];
    for (o, &a) in out.iter_mut().zip(acc.iter()) {
        let rounded = round_q15(a);
        *o = mulaw::encode(rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16);
    }
    Block(out)
}

/// The nominal per-block CPU cost model of the audio transputer, used by
/// the capacity experiments (E1) — see DESIGN.md §2 for the calibration
/// rationale.
///
/// The paper's T425 "can mix five audio streams in the straightforward
/// case, but only three if we have jitter correction, muting, an outgoing
/// stream and the interface code running at the same time" (§4.2). With a
/// 2 ms block tick, the budget is 2 ms of CPU per tick. The costs below
/// are chosen so those two capacities fall exactly where the paper says:
///
/// * plain mixing: 5 × (mix + clawback-lite) < 2 ms < 6 × …
/// * full path: 3 × (mix + clawback + muting share) + outgoing + interface
///   < 2 ms < 4 × …
#[derive(Debug, Clone, Copy)]
pub struct CpuProfile {
    /// Cost to decode+sum+encode one stream's 2 ms block during mixing.
    pub mix_per_stream_ns: u64,
    /// Cost of clawback buffer bookkeeping per stream per block.
    pub clawback_per_stream_ns: u64,
    /// Cost of the muting scan/scaling per block (whole mix, not per stream).
    pub muting_per_block_ns: u64,
    /// Cost to assemble and hand an outgoing block to the server writer.
    pub outgoing_per_block_ns: u64,
    /// Interface code overhead per 2 ms tick.
    pub interface_per_tick_ns: u64,
}

impl Default for CpuProfile {
    fn default() -> Self {
        // Calibrated to §4.2 (see the type-level docs): with these values
        // plain mixing supports exactly 5 streams per 2 ms tick and the
        // full path exactly 3.
        CpuProfile {
            mix_per_stream_ns: 360_000,
            clawback_per_stream_ns: 100_000,
            muting_per_block_ns: 150_000,
            outgoing_per_block_ns: 250_000,
            interface_per_tick_ns: 200_000,
        }
    }
}

impl CpuProfile {
    /// CPU time to mix `streams` per 2 ms tick on the plain path
    /// (no jitter correction, no muting, no outgoing stream).
    pub fn plain_tick_cost_ns(&self, streams: usize) -> u64 {
        streams as u64 * self.mix_per_stream_ns
    }

    /// CPU time per 2 ms tick on the full path of §4.2: jitter correction
    /// (clawback) and muting enabled, one outgoing stream, interface code
    /// running.
    pub fn full_tick_cost_ns(&self, streams: usize) -> u64 {
        streams as u64 * (self.mix_per_stream_ns + self.clawback_per_stream_ns)
            + self.muting_per_block_ns
            + self.outgoing_per_block_ns
            + self.interface_per_tick_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mulaw::{decode, encode};

    fn block_of(pcm: i16) -> Block {
        Block([encode(pcm); BLOCK_BYTES])
    }

    #[test]
    fn mixing_nothing_is_silence() {
        let out = mix_blocks([]);
        assert_eq!(out, Block::SILENCE);
    }

    #[test]
    fn mixing_one_stream_is_identity() {
        let b = block_of(5_000);
        let out = mix_blocks([&b]);
        for s in out.0 {
            assert_eq!(decode(s), decode(encode(5_000)));
        }
    }

    #[test]
    fn mixing_sums_amplitudes() {
        let a = block_of(4_000);
        let b = block_of(3_000);
        let out = mix_blocks([&a, &b]);
        let got = decode(out.0[0]);
        let want = decode(encode(4_000)) + decode(encode(3_000));
        assert!((got - want).abs() < want / 10, "got {got} want {want}");
    }

    #[test]
    fn opposite_signals_cancel() {
        let a = block_of(8_000);
        let b = block_of(-8_000);
        let out = mix_blocks([&a, &b]);
        for s in out.0 {
            assert_eq!(decode(s), 0);
        }
    }

    #[test]
    fn mixing_saturates_instead_of_wrapping() {
        let a = block_of(30_000);
        let b = block_of(30_000);
        let out = mix_blocks([&a, &b]);
        let got = decode(out.0[0]);
        assert!(got > 30_000, "saturated value should stay loud, got {got}");
    }

    #[test]
    fn five_quiet_streams_mix_cleanly() {
        let blocks: Vec<Block> = (0..5).map(|_| block_of(1_000)).collect();
        let out = mix_blocks(blocks.iter());
        let got = decode(out.0[0]);
        assert!((got - 5 * decode(encode(1_000))).abs() < 600, "got {got}");
    }

    #[test]
    fn scaled_mix_applies_gain() {
        let b = block_of(10_000);
        let out = mix_blocks_scaled([(&b, Q15::from_f64(0.2))]);
        let got = decode(out.0[0]);
        let want = decode(encode(10_000)) / 5;
        assert!((got - want).abs() <= want / 8 + 16, "got {got} want {want}");
    }

    #[test]
    fn mix_blocks_matches_scalar_oracle() {
        let mut rng = 0x9E37u32;
        let mut step = move || {
            rng = rng.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (rng >> 16) as u8
        };
        for _ in 0..50 {
            let blocks: Vec<Block> = (0..8)
                .map(|_| Block(std::array::from_fn(|_| step())))
                .collect();
            assert_eq!(mix_blocks(blocks.iter()), mix_blocks_scalar(blocks.iter()));
        }
    }

    // The old f64 implementation of `mix_blocks_scaled`, kept inline as
    // the golden reference the Q15 path is pinned against.
    fn mix_blocks_scaled_f64<'a>(blocks: impl IntoIterator<Item = (&'a Block, f64)>) -> Block {
        let mut acc = [0f64; BLOCK_BYTES];
        for (block, gain) in blocks {
            for (a, &b) in acc.iter_mut().zip(block.0.iter()) {
                *a += decode(b) as f64 * gain;
            }
        }
        let mut out = [0u8; BLOCK_BYTES];
        for (o, &a) in out.iter_mut().zip(acc.iter()) {
            *o = encode(a.round().clamp(i16::MIN as f64, i16::MAX as f64) as i16);
        }
        Block(out)
    }

    #[test]
    fn scaled_mix_golden_vs_old_float_path() {
        let mut rng = 0xC0FFEEu32;
        let mut step = move || {
            rng = rng.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (rng >> 16) as u8
        };
        for seed in 0..10 {
            let blocks: Vec<Block> = (0..4)
                .map(|_| Block(std::array::from_fn(|_| step())))
                .collect();
            // Q15-exact gains: byte-identical to the old float path.
            let exact = [
                Q15::from_raw(1 << 14),
                Q15::ONE,
                Q15::from_raw(3 << 13),
                Q15::ZERO,
            ];
            let q15_mix = mix_blocks_scaled(blocks.iter().zip(exact));
            let f64_mix =
                mix_blocks_scaled_f64(blocks.iter().zip(exact).map(|(b, g)| (b, g.to_f64())));
            assert_eq!(q15_mix, f64_mix, "seed {seed}");
            // The figure-4.1 factors are not Q15-exact; the decoded outputs
            // stay within one quantisation step of the old float path.
            let factors = [0.2f64, 0.5, 1.0, 0.2];
            let q15_mix = mix_blocks_scaled(
                blocks
                    .iter()
                    .zip(factors)
                    .map(|(b, f)| (b, Q15::from_f64(f))),
            );
            let f64_mix = mix_blocks_scaled_f64(blocks.iter().zip(factors));
            for (q, f) in q15_mix.0.iter().zip(f64_mix.0.iter()) {
                let (dq, df) = (decode(*q), decode(*f));
                let tol = 16 + df.abs() / 12;
                assert!((dq - df).abs() <= tol, "seed {seed}: {dq} vs {df}");
            }
        }
    }

    #[test]
    fn cpu_profile_matches_paper_capacities() {
        let p = CpuProfile::default();
        let tick = 2_000_000u64; // 2ms in ns.
                                 // Plain: 5 streams fit, 6 do not (§4.2).
        assert!(p.plain_tick_cost_ns(5) <= tick, "5 plain streams must fit");
        assert!(
            p.plain_tick_cost_ns(6) > tick,
            "6 plain streams must not fit"
        );
        // Full path: 3 fit, 4 do not.
        assert!(p.full_tick_cost_ns(3) <= tick, "3 full streams must fit");
        assert!(p.full_tick_cost_ns(4) > tick, "4 full streams must not fit");
    }
}
