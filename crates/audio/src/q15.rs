//! Q15 fixed-point gains for the mixing/muting hot path.
//!
//! The paper's muting factors (figure 4.1) and per-stream mixing gains
//! were applied through `f64` multiplies. Floating point is slower per
//! sample than integer arithmetic on the hot path and — worse for a
//! deterministic system — its rounding is easy to perturb (intermediate
//! precision, fused multiply-add, reassociation). A Q15 gain is a plain
//! `i32` with 1.0 ≡ `1 << 15`: products are exact in `i64`, the single
//! rounding step is spelled out below, and the result is bit-identical
//! on every host.

/// A gain in Q15 fixed point: 1.0 ≡ `1 << 15`.
///
/// The raw value is deliberately not bounded to ±1.0; gains slightly
/// above unity (e.g. 1.25) work the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q15(i32);

impl Q15 {
    /// Unity gain.
    pub const ONE: Q15 = Q15(1 << 15);
    /// Zero gain (full mute).
    pub const ZERO: Q15 = Q15(0);

    /// The nearest Q15 gain to `gain` (ties round away from zero).
    pub fn from_f64(gain: f64) -> Q15 {
        Q15((gain * (1i32 << 15) as f64).round() as i32)
    }

    /// The exact value this gain represents.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i32 << 15) as f64
    }

    /// A Q15 gain from its raw fixed-point representation.
    pub fn from_raw(raw: i32) -> Q15 {
        Q15(raw)
    }

    /// The raw fixed-point value (`gain * 32768`).
    pub fn raw(self) -> i32 {
        self.0
    }

    /// Scales a linear sample by this gain, rounding half away from zero
    /// — the same tie-breaking `f64::round` uses, so a Q15 scale agrees
    /// with the float path it replaces whenever the gain is exactly
    /// representable in Q15.
    pub fn scale(self, sample: i32) -> i32 {
        round_q15(sample as i64 * self.0 as i64) as i32
    }
}

/// Rounds a Q15-scaled product back to integer, half away from zero.
///
/// The naive `(p + (1 << 14)) >> 15` is wrong for negative products:
/// arithmetic shift floors, so e.g. `p = -0x3FFF` would land on -1 where
/// `round` gives 0. Mirroring the positive case through negation keeps
/// the two signs symmetric.
pub(crate) fn round_q15(p: i64) -> i64 {
    if p >= 0 {
        (p + (1 << 14)) >> 15
    } else {
        -((-p + (1 << 14)) >> 15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unity_and_zero() {
        for s in [-32768, -1, 0, 1, 12345, 32767] {
            assert_eq!(Q15::ONE.scale(s), s);
            assert_eq!(Q15::ZERO.scale(s), 0);
        }
    }

    #[test]
    fn from_f64_round_trips_exact_gains() {
        for raw in [-32768, -1, 0, 1, 6554, 16384, 32768, 40960] {
            let q = Q15::from_raw(raw);
            assert_eq!(Q15::from_f64(q.to_f64()), q);
        }
    }

    #[test]
    fn scale_matches_f64_round_for_exact_gains() {
        // Gains exactly representable in Q15 must agree with the float
        // path on every 16-bit sample — including the negative ties the
        // naive shift-rounding gets wrong.
        for raw in [1, 3, 6554, 16384, 16385, 32767] {
            let q = Q15::from_raw(raw);
            let g = q.to_f64();
            for s in (-32768i32..=32767).step_by(7) {
                let want = (s as f64 * g).round() as i32;
                assert_eq!(q.scale(s), want, "raw={raw} s={s}");
            }
        }
    }

    #[test]
    fn rounding_is_half_away_from_zero() {
        // 0.5 in Q15 applied to odd samples: exact halves.
        let half = Q15::from_raw(1 << 14);
        assert_eq!(half.scale(1), 1);
        assert_eq!(half.scale(-1), -1);
        assert_eq!(half.scale(3), 2);
        assert_eq!(half.scale(-3), -2);
    }
}
