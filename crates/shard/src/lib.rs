//! # pandora-shard — the sharded parallel simulation driver
//!
//! `pandora-sim` is a single-threaded deterministic executor; every soak
//! it can run is capped by one core. This crate breaks that ceiling
//! without giving up determinism: a [`Cluster`] partitions a topology
//! into per-core *shards*, each running its own [`Simulation`] event
//! loop, synchronized with **conservative lookahead** at the ATM-link
//! boundaries between them (DESIGN.md §13).
//!
//! The contract, in three rules:
//!
//! 1. **Links are the only seams.** Boxes and switches never straddle a
//!    shard; everything that crosses a shard boundary travels through a
//!    [`Cluster::port`] — a typed, latency-stamped, one-way link. The
//!    port's latency is the lookahead window: a shard may safely run to
//!    `min over in-neighbours (their horizon + port latency)`, because
//!    nothing a neighbour does *now* can affect this shard sooner than
//!    one latency from now. Zero-latency cross-shard ports are rejected
//!    at build time — they would collapse the lookahead window to
//!    nothing.
//! 2. **Ingress is merged deterministically.** Cross-shard entries are
//!    stamped `(due time, port id, per-port seq)` at the sender and
//!    drained from a per-shard heap in exactly that order, on the
//!    executor's *late* timer lane, so delivery interleaves identically
//!    with local work no matter when the entries physically crossed the
//!    thread boundary. Port ids are assigned in creation order, which
//!    topology builders keep independent of the shard count — so the
//!    merge keys, and therefore the schedule each box observes, are the
//!    same whether the cluster runs on one thread or eight.
//! 3. **One shard is the baseline.** With `Cluster::new(1)` everything
//!    is a loopback port on the calling thread: no OS threads, one
//!    `Simulation`, today's executor exactly. The equivalence suite
//!    (tests/sharded_equivalence.rs) asserts that shard counts
//!    {1, 2, 4, 8} produce byte-identical traces.
//!
//! The OS threads live in [`runtime`] — the one sanctioned exception to
//! the workspace's no-threads determinism rule, and the only module
//! with an os-thread waiver in `pandora-check`.

mod cluster;
mod exchange;
mod hub;
mod runtime;

pub mod broadcast;

#[cfg(test)]
mod tests;

pub use cluster::{Blackboard, Cluster, Egress, Ingress, ShardEnv};
pub use runtime::RunReport;
