//! Per-shard ingress: the deterministic merge heap and its dispatcher.

use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use pandora_sim::{delay_until_late, now, Delay, SimTime};

use crate::exchange::RawEntry;

struct HeapEntry {
    due: u64,
    port: u32,
    seq: u64,
    payload: Box<dyn Any + Send>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.port, self.seq) == (other.due, other.port, other.seq)
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.port, self.seq).cmp(&(other.due, other.port, other.seq))
    }
}

/// One shard's ingress hub: every entry bound for this shard — from
/// neighbours via the exchange, or from loopback ports directly — lands
/// in one heap keyed `(due, port, seq)`, and a single dispatcher task
/// delivers matured entries in exactly that order. The fixed merge
/// order is what makes same-seed runs byte-identical regardless of the
/// shard count or thread interleaving.
pub(crate) struct IngressHub {
    heap: RefCell<BinaryHeap<Reverse<HeapEntry>>>,
    #[allow(clippy::type_complexity)]
    sinks: RefCell<HashMap<u32, Box<dyn Fn(Box<dyn Any + Send>)>>>,
    waker: RefCell<Option<Waker>>,
}

impl IngressHub {
    /// Creates an empty hub with no sinks and no pending entries.
    pub fn new() -> Rc<IngressHub> {
        Rc::new(IngressHub {
            heap: RefCell::new(BinaryHeap::new()),
            sinks: RefCell::new(HashMap::new()),
            waker: RefCell::new(None),
        })
    }

    /// Registers the delivery closure of one ingress port.
    pub fn register_sink(&self, port: u32, sink: Box<dyn Fn(Box<dyn Any + Send>)>) {
        let previous = self.sinks.borrow_mut().insert(port, sink);
        assert!(previous.is_none(), "ingress port {port} bound twice");
    }

    /// Queues one entry without waking the dispatcher — the slice-start
    /// batch path; the runner wakes once after draining the exchange.
    pub fn push_raw(&self, entry: RawEntry) {
        self.heap.borrow_mut().push(Reverse(HeapEntry {
            due: entry.due,
            port: entry.port,
            seq: entry.seq,
            payload: entry.payload,
        }));
    }

    /// Queues one loopback entry mid-slice and wakes the dispatcher so a
    /// same-slice due time is honoured.
    pub fn push(&self, due: u64, port: u32, seq: u64, payload: Box<dyn Any + Send>) {
        self.push_raw(RawEntry {
            due,
            port,
            seq,
            payload,
        });
        self.wake();
    }

    /// Wakes the dispatcher task (no-op before its first poll, which is
    /// fine: the first poll drains everything already queued).
    pub fn wake(&self) {
        if let Some(w) = self.waker.borrow().as_ref() {
            w.wake_by_ref();
        }
    }

    /// Delivers every entry with `due <= now`, in `(due, port, seq)`
    /// order.
    fn deliver_matured(&self) {
        let t = now().as_nanos();
        loop {
            let entry = {
                let mut heap = self.heap.borrow_mut();
                match heap.peek() {
                    Some(Reverse(e)) if e.due <= t => heap.pop().map(|Reverse(e)| e),
                    _ => None,
                }
            };
            let Some(entry) = entry else { return };
            let sinks = self.sinks.borrow();
            let sink = sinks
                .get(&entry.port)
                .unwrap_or_else(|| panic!("ingress port {} has no bound sink", entry.port));
            sink(entry.payload);
        }
    }

    fn next_due(&self) -> Option<u64> {
        self.heap.borrow().peek().map(|Reverse(e)| e.due)
    }
}

/// The dispatcher task body: an endless future that delivers matured
/// entries and sleeps on the executor's *late* timer lane until the
/// next due time. Spurious wakes (slice boundaries, loopback pushes
/// already covered by the armed timer) deliver nothing and are inert —
/// they never perturb the ordering of ordinary timers, because the late
/// lane sorts after every normal timer at the same instant.
pub(crate) struct Dispatcher {
    hub: Rc<IngressHub>,
    sleep: Option<(u64, Delay)>,
}

impl Dispatcher {
    /// Creates the dispatcher driving `hub`; spawn exactly one per shard.
    pub fn new(hub: Rc<IngressHub>) -> Dispatcher {
        Dispatcher { hub, sleep: None }
    }
}

impl Future for Dispatcher {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        *this.hub.waker.borrow_mut() = Some(cx.waker().clone());
        loop {
            this.hub.deliver_matured();
            let Some(due) = this.hub.next_due() else {
                this.sleep = None;
                return Poll::Pending;
            };
            // (Re)arm only when the head changed; an abandoned timer
            // just fires a harmless spurious wake later.
            if this.sleep.as_ref().map(|(d, _)| *d) != Some(due) {
                this.sleep = Some((due, delay_until_late(SimTime::from_nanos(due))));
            }
            let (_, delay) = this.sleep.as_mut().expect("sleep just armed");
            match Pin::new(delay).poll(cx) {
                Poll::Ready(()) => {
                    this.sleep = None;
                    continue;
                }
                Poll::Pending => return Poll::Pending,
            }
        }
    }
}
