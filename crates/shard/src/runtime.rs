//! The threaded runtime: one event loop per shard, synchronized with
//! conservative lookahead at the cross-shard ports.
//!
//! This module is the workspace's one sanctioned use of OS threads. The
//! threads never touch simulation state directly — each owns its shard's
//! `Simulation` outright and communicates only through the per-shard
//! [`Exchange`] mailboxes and the published horizon atomics, with the
//! happens-before discipline documented on [`Exchange`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};

use pandora_sim::{Priority, SimTime, Simulation};

use crate::cluster::{Cluster, SetupFn, ShardEnv};
use crate::exchange::Exchange;
use crate::hub::{Dispatcher, IngressHub};

/// What a finished cluster run observed, per shard and in total.
pub struct RunReport {
    /// `on_finish` lines, outer index = shard, inner = registration order.
    pub shard_lines: Vec<Vec<String>>,
    /// Context switches (task polls) per shard.
    pub ctx_switches: Vec<u64>,
    /// Tasks ever spawned, summed over shards.
    pub spawned_total: u64,
    /// Tasks still live at the deadline, summed over shards.
    pub live_tasks: usize,
}

impl RunReport {
    /// All finisher lines in shard order — the deterministic flat trace
    /// the equivalence suite compares across shard counts.
    pub fn merged_lines(&self) -> Vec<String> {
        self.shard_lines.iter().flatten().cloned().collect()
    }

    /// Total context switches across all shards — the "events executed"
    /// figure the scaling benchmark divides by wall time.
    pub fn events(&self) -> u64 {
        self.ctx_switches.iter().sum()
    }
}

/// Everything one shard's drive loop needs, all `Send`.
struct ShardArgs {
    shard: usize,
    setups: Vec<SetupFn>,
    exchange: Arc<Exchange>,
    blackboard: crate::Blackboard,
    /// Cross-shard in-edges as `(from shard, lookahead window ns)` —
    /// one entry per neighbour, with the *smallest* latency among that
    /// neighbour's ports (the binding constraint).
    in_edges: Vec<(usize, u64)>,
    horizons: Arc<Vec<AtomicU64>>,
    gate: Arc<(Mutex<()>, Condvar)>,
    setup_left: Arc<AtomicUsize>,
    panicked: Arc<AtomicBool>,
    deadline: u64,
}

struct ShardOutcome {
    lines: Vec<String>,
    ctx: u64,
    spawned: u64,
    live: usize,
}

impl Cluster {
    /// Runs every shard to `deadline`, returning the merged report.
    ///
    /// Shard 0 runs on the calling thread; shards 1.. each get an OS
    /// thread. With one shard this spawns no threads at all and is
    /// exactly a single `Simulation::run_until` — the baseline the
    /// equivalence suite measures everything else against.
    ///
    /// # Panics
    ///
    /// A panic on any shard (setup or run) is re-raised here on the
    /// calling thread, after the other shards have been released and
    /// joined — no cross-shard hang.
    pub fn run(self, deadline: SimTime) -> RunReport {
        let n = self.n;
        let horizons: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let gate = Arc::new((Mutex::new(()), Condvar::new()));
        let setup_left = Arc::new(AtomicUsize::new(n));
        let panicked = Arc::new(AtomicBool::new(false));

        // Per-shard in-edges: the tightest lookahead window from each
        // cross-shard neighbour.
        let mut in_edges: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        for p in &self.ports {
            if p.from == p.to {
                continue;
            }
            let lat = p.latency.as_nanos();
            let edges = &mut in_edges[p.to];
            match edges.iter_mut().find(|(f, _)| *f == p.from) {
                Some((_, l)) => *l = (*l).min(lat),
                None => edges.push((p.from, lat)),
            }
        }

        let mut args: Vec<ShardArgs> = self
            .setups
            .into_iter()
            .zip(self.exchanges)
            .zip(in_edges)
            .enumerate()
            .map(|(shard, ((setups, exchange), in_edges))| ShardArgs {
                shard,
                setups,
                exchange,
                blackboard: self.blackboard.clone(),
                in_edges,
                horizons: horizons.clone(),
                gate: gate.clone(),
                setup_left: setup_left.clone(),
                panicked: panicked.clone(),
                deadline: deadline.as_nanos(),
            })
            .collect();

        let shard0 = args.remove(0);
        let workers: Vec<_> = args
            .into_iter()
            .map(|a| {
                std::thread::spawn(move || drive(a)) // check:allow(os-thread) — the sharded runtime's sanctioned worker threads; each owns its Simulation outright (DESIGN.md §13)
            })
            .collect();

        let mut results = vec![drive(shard0)];
        for w in workers {
            results.push(w.join().unwrap_or_else(Err));
        }

        let mut report = RunReport {
            shard_lines: Vec::with_capacity(n),
            ctx_switches: Vec::with_capacity(n),
            spawned_total: 0,
            live_tasks: 0,
        };
        let mut first_panic = None;
        for r in results {
            match r {
                Ok(o) => {
                    report.shard_lines.push(o.lines);
                    report.ctx_switches.push(o.ctx);
                    report.spawned_total += o.spawned;
                    report.live_tasks += o.live;
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        report
    }
}

type PanicPayload = Box<dyn std::any::Any + Send>;

/// One shard's whole life: build, setup, lookahead loop, finishers.
///
/// Panics anywhere are converted into `Err` after the shard has (a)
/// counted itself out of the setup rendezvous, (b) published a
/// `u64::MAX` horizon and (c) set the shared panic flag — so the other
/// shards always run to their deadline instead of hanging.
fn drive(mut args: ShardArgs) -> Result<ShardOutcome, PanicPayload> {
    let setups = std::mem::take(&mut args.setups);
    let result = catch_unwind(AssertUnwindSafe(|| drive_body(&args, setups)));

    // Always release anyone waiting on this shard, success or panic.
    if result.is_err() {
        args.panicked.store(true, SeqCst);
    }
    args.horizons[args.shard].store(u64::MAX, SeqCst);
    drop(args.gate.0.lock().expect("gate mutex poisoned"));
    args.gate.1.notify_all();

    result
}

fn drive_body(args: &ShardArgs, setups: Vec<SetupFn>) -> ShardOutcome {
    struct SetupRendezvous<'a>(&'a ShardArgs);
    impl Drop for SetupRendezvous<'_> {
        // Count this shard out of the setup rendezvous on every exit
        // path — a panicking setup must not strand the other shards.
        fn drop(&mut self) {
            self.0.setup_left.fetch_sub(1, SeqCst);
            drop(self.0.gate.0.lock().expect("gate mutex poisoned"));
            self.0.gate.1.notify_all();
        }
    }

    let mut sim = Simulation::new();
    let hub = IngressHub::new();
    sim.spawn_prio(
        "shard:dispatch",
        Priority::High,
        Dispatcher::new(hub.clone()),
    );

    let mut env = ShardEnv {
        shard: args.shard,
        spawner: sim.spawner(),
        hub: hub.clone(),
        blackboard: args.blackboard.clone(),
        finishers: Vec::new(),
    };
    {
        let rendezvous = SetupRendezvous(args);
        for f in setups {
            f(&mut env);
        }
        drop(rendezvous);
    }

    // Wait for every shard to finish setup before any clock starts:
    // blackboard writes all happen before any blackboard read at t >= 0.
    {
        let mut guard = args.gate.0.lock().expect("gate mutex poisoned");
        while args.setup_left.load(SeqCst) > 0 && !args.panicked.load(SeqCst) {
            guard = args.gate.1.wait(guard).expect("gate mutex poisoned");
        }
    }

    // The conservative-lookahead loop. Safe target: no neighbour can
    // affect this shard sooner than its published horizon plus the
    // tightest port latency, so running to the min over in-edges (capped
    // at the deadline) can never receive an event from the "past".
    while !args.panicked.load(SeqCst) {
        let now = sim.now().as_nanos();
        if now >= args.deadline {
            break;
        }
        let target = safe_target(args);
        if target <= now {
            // Blocked on a neighbour: re-check under the gate lock, then
            // sleep until some shard publishes a new horizon. Progress is
            // guaranteed because every cross-shard port has positive
            // latency — some shard always has target > now.
            let guard = args.gate.0.lock().expect("gate mutex poisoned");
            if safe_target(args) <= now && !args.panicked.load(SeqCst) {
                drop(args.gate.1.wait(guard).expect("gate mutex poisoned"));
            }
            continue;
        }
        // Horizon reads above happened before this drain, and senders
        // push before publishing — so every entry due within this slice
        // is already in the mailbox. See Exchange's doc comment.
        for entry in args.exchange.drain() {
            hub.push_raw(entry);
        }
        hub.wake();
        sim.run_until(SimTime::from_nanos(target));
        args.horizons[args.shard].store(target, SeqCst);
        drop(args.gate.0.lock().expect("gate mutex poisoned"));
        args.gate.1.notify_all();
    }

    let lines = env.finishers.drain(..).flat_map(|f| f()).collect();
    ShardOutcome {
        lines,
        ctx: sim.context_switches(),
        spawned: sim.spawned_total(),
        live: sim.live_tasks(),
    }
}

fn safe_target(args: &ShardArgs) -> u64 {
    args.in_edges
        .iter()
        .map(|&(from, lat)| args.horizons[from].load(SeqCst).saturating_add(lat))
        .min()
        .unwrap_or(u64::MAX)
        .min(args.deadline)
}
