//! Cluster construction: shard-count-independent ports, per-shard setup
//! closures and the in-shard environment handed to them.

use std::any::Any;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

use pandora_sim::{unbounded, Receiver, SimDuration, Spawner};

use crate::exchange::{Exchange, RawEntry};
use crate::hub::IngressHub;

/// A typed, one-way, latency-stamped link crossing (or looping within)
/// a shard: the egress half, bound in the sending shard.
pub struct Egress<T> {
    pub(crate) port: u32,
    pub(crate) from: usize,
    pub(crate) to: usize,
    pub(crate) latency: SimDuration,
    pub(crate) exchange: Arc<Exchange>,
    pub(crate) _payload: PhantomData<fn(T)>,
}

/// The ingress half of a port, bound in the receiving shard.
pub struct Ingress<T> {
    pub(crate) port: u32,
    pub(crate) to: usize,
    pub(crate) _payload: PhantomData<fn() -> T>,
}

pub(crate) type SetupFn = Box<dyn FnOnce(&mut ShardEnv) + Send>;

/// A shared, cross-shard key/value scratchpad for *plain setup data*
/// (stream ids, output ids) that one shard allocates and another needs.
/// All writes happen during setup, all reads from inside the simulation
/// (t >= 0), and the runtime barriers setup completion before any shard
/// runs — so reads always see the complete, deterministic map.
#[derive(Clone, Default)]
pub struct Blackboard {
    map: Arc<Mutex<BTreeMap<String, Box<dyn Any + Send>>>>,
}

impl Blackboard {
    /// Stores `value` under `key`, replacing any previous value.
    pub fn put<T: Any + Send>(&self, key: &str, value: T) {
        self.map
            .lock()
            .expect("blackboard mutex poisoned")
            .insert(key.to_string(), Box::new(value));
    }

    /// Reads a copy of the value under `key`, if present and of type `T`.
    pub fn get<T: Any + Clone>(&self, key: &str) -> Option<T> {
        self.map
            .lock()
            .expect("blackboard mutex poisoned")
            .get(key)
            .and_then(|v| v.downcast_ref::<T>())
            .cloned()
    }

    /// Reads the value under `key`, panicking with a diagnostic when it
    /// is missing or of the wrong type — setup bugs, not runtime states.
    pub fn expect<T: Any + Clone>(&self, key: &str) -> T {
        self.get(key)
            .unwrap_or_else(|| panic!("blackboard key {key:?} missing or wrong type"))
    }
}

/// A partitioned simulation under construction: `n` shards, the ports
/// between them, and the setup closures that will build each shard's
/// slice of the topology on its own event loop.
pub struct Cluster {
    pub(crate) n: usize,
    pub(crate) ports: Vec<PortMeta>,
    pub(crate) setups: Vec<Vec<SetupFn>>,
    pub(crate) exchanges: Vec<Arc<Exchange>>,
    pub(crate) blackboard: Blackboard,
}

pub(crate) struct PortMeta {
    pub from: usize,
    pub to: usize,
    pub latency: SimDuration,
}

impl Cluster {
    /// An empty cluster of `n_shards` event loops.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn new(n_shards: usize) -> Cluster {
        assert!(n_shards > 0, "a cluster needs at least one shard");
        Cluster {
            n: n_shards,
            ports: Vec::new(),
            setups: (0..n_shards).map(|_| Vec::new()).collect(),
            exchanges: (0..n_shards)
                .map(|_| Arc::new(Exchange::default()))
                .collect(),
            blackboard: Blackboard::default(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.n
    }

    /// The cross-shard setup scratchpad.
    pub fn blackboard(&self) -> Blackboard {
        self.blackboard.clone()
    }

    /// Creates a one-way port from shard `from` to shard `to` with the
    /// given link `latency`. Port ids are assigned in creation order —
    /// topology builders must call this in an order independent of the
    /// shard count, so the deterministic merge keys line up across
    /// partitionings.
    ///
    /// # Panics
    ///
    /// Panics if a shard index is out of range, or on a **zero-latency
    /// cross-shard port**: the latency is the conservative-lookahead
    /// window, and a zero window would let the shards deadlock each
    /// other (loopback ports may be zero-latency — there is no seam to
    /// look ahead across).
    pub fn port<T: Send + 'static>(
        &mut self,
        from: usize,
        to: usize,
        latency: SimDuration,
        name: &str,
    ) -> (Egress<T>, Ingress<T>) {
        assert!(from < self.n, "port {name}: from-shard {from} out of range");
        assert!(to < self.n, "port {name}: to-shard {to} out of range");
        assert!(
            latency > SimDuration::ZERO || from == to,
            "port {name}: zero-latency cross-shard link rejected — the \
             latency is the lookahead window and must be positive"
        );
        let port = u32::try_from(self.ports.len()).expect("port id overflow");
        self.ports.push(PortMeta { from, to, latency });
        (
            Egress {
                port,
                from,
                to,
                latency,
                exchange: self.exchanges[to].clone(),
                _payload: PhantomData,
            },
            Ingress {
                port,
                to,
                _payload: PhantomData,
            },
        )
    }

    /// Registers a setup closure to run on shard `shard`'s own event
    /// loop before the clock starts. Closures run in registration order;
    /// all shards finish setup before any shard runs.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn setup(&mut self, shard: usize, f: impl FnOnce(&mut ShardEnv) + Send + 'static) {
        assert!(shard < self.n, "setup shard {shard} out of range");
        self.setups[shard].push(Box::new(f));
    }
}

/// The in-shard face of the cluster, handed to setup closures: spawn
/// tasks, bind port halves, read the blackboard, register end-of-run
/// reporters.
pub struct ShardEnv {
    pub(crate) shard: usize,
    pub(crate) spawner: Spawner,
    pub(crate) hub: Rc<IngressHub>,
    pub(crate) blackboard: Blackboard,
    #[allow(clippy::type_complexity)]
    pub(crate) finishers: Vec<Box<dyn FnOnce() -> Vec<String>>>,
}

impl ShardEnv {
    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Spawner onto this shard's event loop.
    pub fn spawner(&self) -> &Spawner {
        &self.spawner
    }

    /// The cross-shard setup scratchpad.
    pub fn blackboard(&self) -> &Blackboard {
        &self.blackboard
    }

    /// Binds the egress half of a port: everything received from `rx` is
    /// stamped `(now + latency, port, seq)` and handed to the receiving
    /// shard's ingress heap — directly for loopback ports, through the
    /// cross-thread exchange otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the port's from-shard is not this shard.
    pub fn bind_egress<T: Send + 'static>(&self, egress: Egress<T>, rx: Receiver<T>) {
        assert!(
            egress.from == self.shard,
            "egress of port {} belongs to shard {}, bound in shard {}",
            egress.port,
            egress.from,
            self.shard
        );
        let loopback = (egress.from == egress.to).then(|| self.hub.clone());
        let port = egress.port;
        let latency = egress.latency;
        let exchange = egress.exchange;
        self.spawner
            .spawn(&format!("shard:egress:{port}"), async move {
                let mut seq = 0u64;
                while let Ok(value) = rx.recv().await {
                    let due = (pandora_sim::now() + latency).as_nanos();
                    let payload: Box<dyn Any + Send> = Box::new(value);
                    match &loopback {
                        Some(hub) => hub.push(due, port, seq, payload),
                        None => exchange.push(RawEntry {
                            due,
                            port,
                            seq,
                            payload,
                        }),
                    }
                    seq += 1;
                }
            });
    }

    /// Binds the ingress half of a port, returning the receiver on which
    /// this shard's topology consumes the port's traffic. Values arrive
    /// exactly at their stamped due times, in deterministic merge order.
    ///
    /// # Panics
    ///
    /// Panics if the port's to-shard is not this shard, or if the port's
    /// ingress was already bound.
    pub fn bind_ingress<T: Send + 'static>(&self, ingress: Ingress<T>) -> Receiver<T> {
        assert!(
            ingress.to == self.shard,
            "ingress of port {} belongs to shard {}, bound in shard {}",
            ingress.port,
            ingress.to,
            self.shard
        );
        let (tx, rx) = unbounded::<T>();
        self.hub.register_sink(
            ingress.port,
            Box::new(move |payload| {
                let value = payload.downcast::<T>().expect("port payload type mismatch");
                // Delivery into an unbounded queue never blocks; a
                // dropped receiver just discards the rest of the stream.
                let _ = tx.try_send(*value);
            }),
        );
        rx
    }

    /// Registers a closure to run on this shard after the run completes;
    /// the returned lines land in [`crate::RunReport::shard_lines`], in
    /// shard order then registration order.
    pub fn on_finish(&mut self, f: impl FnOnce() -> Vec<String> + 'static) {
        self.finishers.push(Box::new(f));
    }
}
