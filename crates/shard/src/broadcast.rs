//! A large fan-out broadcast topology for soaks and scaling benchmarks:
//! one source box at the root of a `fanout`-ary relay tree, every edge a
//! latency-stamped port. The builder assigns boxes to shards by
//! contiguous index ranges and creates ports in child-index order, so
//! the merge keys — and therefore the trace — are identical for every
//! shard count.

use std::cell::Cell;
use std::rc::Rc;

use pandora_sim::{delay, now, unbounded, Sender, SimDuration};

use crate::cluster::{Cluster, Egress, Ingress};

/// One broadcast segment travelling down the tree.
#[derive(Clone, Copy, Debug)]
pub struct Seg {
    /// Source sequence number.
    pub seq: u32,
    /// Source emission time, nanoseconds of virtual time.
    pub stamp: u64,
}

/// Shape of the broadcast soak.
#[derive(Clone, Copy, Debug)]
pub struct BroadcastConfig {
    /// Total boxes, source included. Box 0 is the source; box `i > 0`
    /// relays under parent `(i - 1) / fanout`.
    pub boxes: usize,
    /// Children per relay.
    pub fanout: usize,
    /// Source emission interval.
    pub segment_interval: SimDuration,
    /// Segments the source emits.
    pub segments: u32,
    /// Per-edge link latency — also the cross-shard lookahead window, so
    /// it must be positive.
    pub hop_latency: SimDuration,
    /// Per-relay processing delay before forwarding a segment.
    pub relay_cost: SimDuration,
}

/// The shard that owns box `i`: contiguous ranges, box 0 on shard 0.
pub fn shard_of(i: usize, boxes: usize, shards: usize) -> usize {
    debug_assert!(i < boxes);
    i * shards / boxes
}

/// Builds the broadcast tree over `shards` shards. Run the returned
/// cluster to a deadline and read the per-box lines from the report.
///
/// # Panics
///
/// Panics if `boxes` or `fanout` is zero, or if `hop_latency` is zero
/// (it is the lookahead window).
pub fn build(cfg: &BroadcastConfig, shards: usize) -> Cluster {
    assert!(cfg.boxes > 0, "broadcast needs at least the source box");
    assert!(cfg.fanout > 0, "fanout must be positive");
    assert!(
        cfg.hop_latency > SimDuration::ZERO,
        "hop latency is the lookahead window and must be positive"
    );

    let mut cluster = Cluster::new(shards);

    // Every tree edge as a port, in child-index order — the canonical
    // creation order shared by all shard counts.
    let mut edges: Vec<Option<(Egress<Seg>, Ingress<Seg>)>> = Vec::with_capacity(cfg.boxes);
    edges.push(None); // box 0 has no inbound edge
    for child in 1..cfg.boxes {
        let parent = (child - 1) / cfg.fanout;
        let from = shard_of(parent, cfg.boxes, shards);
        let to = shard_of(child, cfg.boxes, shards);
        let port = cluster.port::<Seg>(from, to, cfg.hop_latency, &format!("edge{child}"));
        edges.push(Some(port));
    }

    // Split each edge into its two halves, keyed by the box that binds it.
    let mut inbound: Vec<Option<Ingress<Seg>>> = Vec::with_capacity(cfg.boxes);
    let mut outbound: Vec<Vec<Egress<Seg>>> = (0..cfg.boxes).map(|_| Vec::new()).collect();
    for (child, edge) in edges.into_iter().enumerate() {
        match edge {
            Some((egress, ingress)) => {
                inbound.push(Some(ingress));
                outbound[(child - 1) / cfg.fanout].push(egress);
            }
            None => inbound.push(None),
        }
    }

    for (i, (ingress, egresses)) in inbound.into_iter().zip(outbound).enumerate() {
        let shard = shard_of(i, cfg.boxes, shards);
        let cfg = *cfg;
        cluster.setup(shard, move |env| {
            // Bind this box's outbound edges; keep one local sender per
            // child for the relay task to fan out on.
            let child_txs: Vec<Sender<Seg>> = egresses
                .into_iter()
                .map(|egress| {
                    let (tx, rx) = unbounded::<Seg>();
                    env.bind_egress(egress, rx);
                    tx
                })
                .collect();

            let recv = Rc::new(Cell::new(0u64));
            let fwd = Rc::new(Cell::new(0u64));
            let last = Rc::new(Cell::new(-1i64));

            match ingress {
                None => {
                    // The source: emit `segments` at a fixed cadence.
                    let fwd = fwd.clone();
                    env.spawner().spawn("bcast:src", async move {
                        for seq in 0..cfg.segments {
                            let seg = Seg {
                                seq,
                                stamp: now().as_nanos(),
                            };
                            for tx in &child_txs {
                                let _ = tx.try_send(seg);
                                fwd.set(fwd.get() + 1);
                            }
                            delay(cfg.segment_interval).await;
                        }
                    });
                }
                Some(ingress) => {
                    let rx = env.bind_ingress(ingress);
                    let (recv, fwd, last) = (recv.clone(), fwd.clone(), last.clone());
                    env.spawner().spawn(&format!("bcast:box{i}"), async move {
                        while let Ok(seg) = rx.recv().await {
                            recv.set(recv.get() + 1);
                            last.set(i64::from(seg.seq));
                            delay(cfg.relay_cost).await;
                            for tx in &child_txs {
                                let _ = tx.try_send(seg);
                                fwd.set(fwd.get() + 1);
                            }
                        }
                    });
                }
            }

            env.on_finish(move || {
                vec![format!(
                    "box{i:04} recv={} fwd={} last={}",
                    recv.get(),
                    fwd.get(),
                    last.get()
                )]
            });
        });
    }

    cluster
}
