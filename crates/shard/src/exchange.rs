//! The cross-thread mailbox between shards.

use std::any::Any;
use std::sync::Mutex;

/// One timestamped cross-shard item: the merge key `(due, port, seq)`
/// plus the type-erased payload.
pub(crate) struct RawEntry {
    pub due: u64,
    pub port: u32,
    pub seq: u64,
    pub payload: Box<dyn Any + Send>,
}

/// One shard's inbound mailbox. Senders on other threads push entries
/// under the mutex; the owning shard drains the whole batch at its next
/// slice boundary and feeds it to the ingress heap.
///
/// Happens-before discipline: a sending shard always pushes here
/// *before* publishing the horizon that lets the receiver advance far
/// enough to need the entry. The receiver reads horizons first and
/// drains second, so every entry with `due <= slice target` is
/// guaranteed to be in the heap before the slice runs.
#[derive(Default)]
pub(crate) struct Exchange {
    queue: Mutex<Vec<RawEntry>>,
}

impl Exchange {
    /// Enqueues one cross-shard entry (called from the sending shard).
    pub fn push(&self, entry: RawEntry) {
        self.queue
            .lock()
            .expect("exchange mutex poisoned")
            .push(entry);
    }

    /// Takes every queued entry (called from the owning shard's loop).
    pub fn drain(&self) -> Vec<RawEntry> {
        std::mem::take(&mut *self.queue.lock().expect("exchange mutex poisoned"))
    }
}
