//! Unit tests: determinism of the cluster primitives themselves. The
//! full topology equivalence suite lives in tests/sharded_equivalence.rs
//! at the workspace root.

use std::cell::Cell;
use std::rc::Rc;

use pandora_sim::{delay, now, unbounded, SimDuration, SimTime};

use crate::broadcast::{self, BroadcastConfig};
use crate::Cluster;

/// Two boxes ping-ponging a counter across one duplex link, placed
/// either together (1 shard) or apart (2 shards). Returns the merged
/// trace lines.
fn ping_pong(shards: usize, rounds: u32) -> Vec<String> {
    assert!(shards == 1 || shards == 2);
    let mut cluster = Cluster::new(shards);
    let lat = SimDuration::from_micros(50);
    let shard_b = shards - 1;
    let (a2b_tx, a2b_rx) = cluster.port::<u32>(0, shard_b, lat, "a2b");
    let (b2a_tx, b2a_rx) = cluster.port::<u32>(shard_b, 0, lat, "b2a");

    cluster.setup(0, move |env| {
        let (tx, pump_rx) = unbounded::<u32>();
        env.bind_egress(a2b_tx, pump_rx);
        let rx = env.bind_ingress(b2a_rx);
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let log2 = log.clone();
        env.spawner().spawn("box:a", async move {
            let _ = tx.try_send(0);
            while let Ok(v) = rx.recv().await {
                log2.borrow_mut()
                    .push(format!("a t={} v={v}", now().as_nanos()));
                if v >= rounds {
                    break;
                }
                let _ = tx.try_send(v + 1);
            }
        });
        env.on_finish(move || log.borrow().clone());
    });
    cluster.setup(shard_b, move |env| {
        let (tx, pump_rx) = unbounded::<u32>();
        env.bind_egress(b2a_tx, pump_rx);
        let rx = env.bind_ingress(a2b_rx);
        let log = Rc::new(std::cell::RefCell::new(Vec::new()));
        let log2 = log.clone();
        env.spawner().spawn("box:b", async move {
            while let Ok(v) = rx.recv().await {
                log2.borrow_mut()
                    .push(format!("b t={} v={v}", now().as_nanos()));
                delay(SimDuration::from_micros(10)).await;
                let _ = tx.try_send(v + 1);
            }
        });
        env.on_finish(move || log.borrow().clone());
    });

    let report = cluster.run(SimTime::from_millis(50));
    report.merged_lines()
}

#[test]
fn two_shard_ping_pong_matches_single_shard() {
    let single = ping_pong(1, 40);
    let sharded = ping_pong(2, 40);
    assert!(!single.is_empty(), "trace must not be empty");
    assert_eq!(single, sharded);
}

#[test]
fn loopback_port_delivers_at_stamped_latency() {
    let mut cluster = Cluster::new(1);
    let (tx_half, rx_half) =
        cluster.port::<&'static str>(0, 0, SimDuration::from_millis(3), "loop");
    cluster.setup(0, move |env| {
        let (tx, pump_rx) = unbounded();
        env.bind_egress(tx_half, pump_rx);
        let rx = env.bind_ingress(rx_half);
        env.spawner().spawn("src", async move {
            let _ = tx.try_send("x");
            delay(SimDuration::from_millis(1)).await;
            let _ = tx.try_send("y");
        });
        let seen = Rc::new(std::cell::RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        env.spawner().spawn("sink", async move {
            while let Ok(v) = rx.recv().await {
                seen2
                    .borrow_mut()
                    .push(format!("t={} v={v}", now().as_nanos()));
            }
        });
        env.on_finish(move || seen.borrow().clone());
    });
    let report = cluster.run(SimTime::from_millis(10));
    assert_eq!(
        report.merged_lines(),
        vec!["t=3000000 v=x".to_string(), "t=4000000 v=y".to_string()]
    );
}

#[test]
fn idle_shard_still_publishes_horizons() {
    // Shard 1 has no tasks at all; shard 0 depends on it through a port
    // that never carries traffic. The run must still reach the deadline.
    let mut cluster = Cluster::new(2);
    let (_quiet_tx, quiet_rx) = cluster.port::<u8>(1, 0, SimDuration::from_micros(100), "quiet");
    cluster.setup(0, move |env| {
        let _rx = env.bind_ingress(quiet_rx);
        let ticks = Rc::new(Cell::new(0u32));
        let ticks2 = ticks.clone();
        env.spawner().spawn("ticker", async move {
            loop {
                delay(SimDuration::from_millis(1)).await;
                ticks2.set(ticks2.get() + 1);
            }
        });
        env.on_finish(move || vec![format!("ticks={}", ticks.get())]);
    });
    // The egress half must still be bound somewhere or drop silently;
    // binding it with a sender we never use keeps the port honest.
    cluster.setup(1, move |env| {
        let (_tx, pump_rx) = unbounded::<u8>();
        env.bind_egress(_quiet_tx, pump_rx);
    });
    let report = cluster.run(SimTime::from_millis(20));
    assert_eq!(report.merged_lines(), vec!["ticks=20".to_string()]);
}

#[test]
#[should_panic(expected = "zero-latency cross-shard link rejected")]
fn zero_latency_cross_shard_port_is_rejected() {
    let mut cluster = Cluster::new(2);
    let _ = cluster.port::<u8>(0, 1, SimDuration::ZERO, "bad");
}

#[test]
fn setup_panic_propagates_without_hanging_other_shards() {
    let result = std::panic::catch_unwind(|| {
        let mut cluster = Cluster::new(2);
        let (tx, rx) = cluster.port::<u8>(0, 1, SimDuration::from_micros(1), "p");
        cluster.setup(0, move |env| {
            let (_tx, pump_rx) = unbounded::<u8>();
            env.bind_egress(tx, pump_rx);
        });
        cluster.setup(1, move |env| {
            let _rx = env.bind_ingress(rx);
            panic!("boom in setup");
        });
        cluster.run(SimTime::from_millis(1));
    });
    let payload = result.expect_err("run must re-raise the shard panic");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(String::from)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom in setup"), "unexpected payload: {msg}");
}

#[test]
fn broadcast_trace_is_identical_across_shard_counts() {
    let cfg = BroadcastConfig {
        boxes: 25,
        fanout: 3,
        segment_interval: SimDuration::from_millis(2),
        segments: 8,
        hop_latency: SimDuration::from_micros(200),
        relay_cost: SimDuration::from_micros(40),
    };
    let deadline = SimTime::from_millis(40);
    let baseline = broadcast::build(&cfg, 1).run(deadline).merged_lines();
    assert_eq!(baseline.len(), cfg.boxes);
    // Every relay saw every segment by the deadline.
    assert!(
        baseline.iter().skip(1).all(|l| l.contains("recv=8")),
        "incomplete broadcast: {baseline:?}"
    );
    for shards in [2, 4, 8] {
        let got = broadcast::build(&cfg, shards).run(deadline).merged_lines();
        assert_eq!(got, baseline, "shard count {shards} diverged");
    }
}
