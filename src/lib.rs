//! Shared helpers for the Pandora examples and integration tests.
pub use pandora;
