//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel::bounded` constructor is provided, backed by
//! `std::sync::mpsc::sync_channel`, whose blocking `send` gives the same
//! rendezvous back-pressure the live runtime (`pandora::rt`) relies on.
//! The real crossbeam channel is MPMC; this shim is MPSC, which matches
//! every use in this workspace (one consumer per channel).

/// Bounded blocking channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, TryRecvError};

    /// The sending half of a bounded channel (cloneable, blocking `send`).
    pub type Sender<T> = std::sync::mpsc::SyncSender<T>;

    /// Creates a bounded channel of the given capacity; `send` blocks when
    /// the queue is full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn senders_clone_and_close() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
