//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and method surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `bench_function`, groups and
//! `iter_batched_ref` — over a deliberately simple harness: warm up,
//! time a fixed wall-clock budget, report mean ns/iteration to stdout.
//! No statistics, plots or baselines; the point is that `cargo bench`
//! keeps running without registry access.

use std::hint;
use std::time::{Duration, Instant};

/// Batch sizing hint, accepted for API compatibility and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup state.
    SmallInput,
    /// Large per-iteration setup state.
    LargeInput,
    /// One setup per measured batch.
    PerIteration,
}

/// Re-export spot for `black_box`, mirroring criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The bench driver handed to each registered bench function.
pub struct Criterion {
    /// Wall-clock budget per measured bench.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.measure_for, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim has no sampling statistics.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.criterion.measure_for, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; drives the iterations.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        hint::black_box(routine());
        let probe = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(10).as_nanos() / probe.as_nanos()).clamp(1, 100_000);
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                hint::black_box(routine());
            }
            self.elapsed += t0.elapsed();
            self.iters += batch as u64;
        }
    }

    /// Times `routine` over fresh state from `setup` each batch.
    pub fn iter_batched_ref<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(&mut S) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let mut state = setup();
            let t0 = Instant::now();
            hint::black_box(routine(&mut state));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }
}

fn run_bench(name: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<50} (no iterations)");
    } else {
        let per = b.elapsed.as_nanos() / b.iters as u128;
        println!("{name:<50} {per:>12} ns/iter  ({} iters)", b.iters);
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn batched_runs_setup_and_routine() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        c.bench_function("t", |b| {
            b.iter_batched_ref(|| vec![1u8, 2, 3], |v| v.pop(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn group_names_compose() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
