//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides a `Mutex` with parking_lot's ergonomics — `lock()` returns the
//! guard directly, no poisoning — implemented over `std::sync::Mutex`. A
//! panic while a guard is held simply clears the poison flag on the next
//! lock, matching parking_lot's behaviour of leaving the data accessible.

use std::sync::PoisonError;

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn contended_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
