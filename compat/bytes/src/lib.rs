//! Offline stand-in for the `bytes` crate.
//!
//! The wire codec only needs a growable byte buffer with big-endian
//! `put_u32`/`put_slice` on the encode side and an advancing `get_u32`
//! over `&[u8]` on the decode side, so that is all this shim provides.
//! `BytesMut` is a thin wrapper over `Vec<u8>` — no shared views, no
//! split/freeze machinery.

use std::ops::Deref;

/// Read side: big-endian cursor over a byte source, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads a big-endian `u32` and advances past it.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.len() >= 4, "get_u32 on {} bytes", self.len());
        let v = u32::from_be_bytes([self[0], self[1], self[2], self[3]]);
        *self = &self[4..];
        v
    }
}

/// Write side: big-endian append, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Appends a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

/// A growable byte buffer, mirroring the subset of `bytes::BytesMut` the
/// workspace uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Consumes the buffer, returning the underlying vector without a copy.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn put_get_round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(&[1, 2, 3]);
        let v = b.to_vec();
        assert_eq!(v.len(), 7);
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r, &[1, 2, 3]);
    }

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::default();
        b.put_u32(1);
        assert_eq!(&b[..], &[0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "get_u32")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
