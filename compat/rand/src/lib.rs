//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny subset of the `rand 0.8` API it actually uses: a seedable
//! small RNG plus `gen_range` over integer and `Duration` ranges and
//! `gen_bool`. The generator is xorshift64* — deterministic, fast and
//! plenty for jitter models and seeded experiments; it makes no
//! cryptographic claims whatsoever.

use std::ops::{Range, RangeInclusive};
use std::time::Duration;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling interface, mirroring the `rand::Rng` extension trait.
pub trait Rng {
    /// Returns the next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        // 53 high-quality bits -> uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

fn sample_u64<R: Rng>(rng: &mut R, lo: u64, span: u64) -> u64 {
    // span == 0 encodes the full u64 range (lo must be 0 there).
    if span == 0 {
        return rng.next_u64();
    }
    // Modulo bias is below 2^-32 for the spans this workspace draws
    // (jitter windows of at most seconds in nanoseconds); acceptable for
    // simulation workloads.
    lo + rng.next_u64() % span
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                sample_u64(rng, self.start as u64, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                // span + 1 wraps to 0 for the full-width range, which
                // sample_u64 treats as "any value".
                sample_u64(rng, lo as u64, span.wrapping_add(1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<Duration> for RangeInclusive<Duration> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> Duration {
        let lo = self.start().as_nanos() as u64;
        let hi = self.end().as_nanos() as u64;
        assert!(lo <= hi, "empty range");
        Duration::from_nanos(sample_u64(rng, lo, (hi - lo).wrapping_add(1)))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xorshift64*).
    ///
    /// Unlike the real crate's `SmallRng` this implementation is stable
    /// across platforms and releases, which the deterministic experiment
    /// tables rely on.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 the seed so small/sequential seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: z.max(1), // xorshift state must be non-zero
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};
    use std::time::Duration;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5u32..9);
            assert!((5..9).contains(&w));
        }
    }

    #[test]
    fn gen_range_duration() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hi = Duration::from_millis(8);
        for _ in 0..1_000 {
            let d = rng.gen_range(Duration::ZERO..=hi);
            assert!(d <= hi);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
