//! Shared helpers for the fault-injection conformance suite.

use pandora::BoxPair;
use pandora_faults::FaultTargets;
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

/// Registers the standard fault targets of a connected pair under stable
/// names: both path directions ("a-b"/"b-a") and all eight transputers
/// (by their CPU names, e.g. "boxb.audio").
pub fn pair_targets(pair: &BoxPair) -> FaultTargets {
    let mut t = FaultTargets::new();
    t.register_path("a-b", pair.a_to_b_ctrl.clone());
    t.register_path("b-a", pair.b_to_a_ctrl.clone());
    for b in [&pair.a, &pair.b] {
        for cpu in [&b.audio_cpu, &b.server_cpu, &b.capture_cpu, &b.mixer_cpu] {
            t.register_cpu(cpu.name(), cpu.clone());
        }
    }
    t
}

/// The conformance suite's small videophone capture window.
pub fn video_cfg() -> CaptureConfig {
    CaptureConfig {
        rect: Rect::new(16, 16, 128, 96),
        rate: RateFraction::new(2, 5),
        lines_per_segment: 32,
        mode: LineMode::Dpcm,
    }
}

/// A deterministic, human-readable metric snapshot of a finished run —
/// integer counters only, so two replays of the same seed must produce
/// byte-identical strings.
pub fn snapshot(pair: &BoxPair) -> String {
    let mut out = String::new();
    for (label, b) in [("a", &pair.a), ("b", &pair.b)] {
        out.push_str(&format!(
            "{label}: fwd={} sw_drop={} no_route={} p3={} tx_audio={} tx_video={} cells={} \
             rx_seg={} rx_discard={} rx_decode_err={} pool_exh={} \
             spk_recv={} spk_lost={} spk_late={} concealed={} disp_frames={}\n",
            b.switch_stats.forwarded(),
            b.switch_stats.dropped_total(),
            b.switch_stats.no_route(),
            b.net_out_stats.p3_drops_total(),
            b.net_out_stats.audio_segments(),
            b.net_out_stats.video_segments(),
            b.net_out_stats.cells(),
            b.net_in_stats.segments(),
            b.net_in_stats.frames_discarded(),
            b.net_in_stats.decode_errors(),
            b.net_in_stats.pool_exhausted(),
            b.speaker.segments_received(),
            b.speaker.segments_lost(),
            b.speaker.late_ticks(),
            b.speaker.concealed(),
            b.display.frames_shown(),
        ));
    }
    out
}
