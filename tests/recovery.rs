//! Failure-recovery conformance (ISSUE 5): P6/P8 under a box crash.
//!
//! A lease-guarded conference loses one member to a seeded `BoxCrash`
//! mid-call. The controller must detect the death from missed
//! heartbeats, reconverge the surviving members without a single lost
//! segment or late mix tick (P6), release every admission charge and
//! fabric route the dead box held, and — after the seeded `BoxRestart`
//! — settle the rejoining box's stale state so it re-enters through
//! normal admission. A counter-scenario with leases disabled shows the
//! mechanism is load-bearing: the dead box's routes and charges leak
//! forever. A final P8 scenario injects sustained cell loss at one
//! member and asserts its health monitor mutes locally, then restores
//! by hysteresis once the loss clears — no controller round-trip.

use std::cell::Cell as StdCell;
use std::rc::Rc;

use pandora::BoxConfig;
use pandora_audio::gen::Speech;
use pandora_faults::{install, FaultKind, FaultPlan, FaultTargets};
use pandora_recover::HealthConfig;
use pandora_session::{ControllerConfig, LeaseConfig, LeaseState, Star, StarConfig, StreamClass};
use pandora_sim::{SimDuration, SimTime, Simulation};

/// Everything one crash-soak run observes, for assertions and replay
/// equality. All fields derive from virtual time and seeded inputs, so
/// equal seeds must produce equal outcomes byte for byte.
struct CrashOutcome {
    digest: String,
    recovery_digest: String,
    lease_digest: String,
    timeline: String,
    trace: String,
    node_report: Vec<String>,
    crashes: u64,
    rejoins: u64,
    detect_ns: u64,
    routes_after_reconverge: usize,
    debt_while_dead: usize,
    debt_after_rejoin: usize,
    readmitted_rate: u32,
    dead_recv_at_rejoin: u64,
    dead_recv_final: u64,
    survivor_lost: u64,
    survivor_late: u64,
}

/// A conference of `boxes` members with leases on: node0 fans audio out
/// to node1..=node7 (or all others when smaller), node3 sources its own
/// stream to the last box. node3 crashes at t=2 s and restarts at
/// t=6.5 s; after its lease settles, the driver re-admits it.
fn run_crash_soak(boxes: usize, seed: u64) -> CrashOutcome {
    assert!(boxes >= 6, "need a source, fan-out, node3 and its listener");
    let interval = SimDuration::from_millis(100);
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        boxes,
        StarConfig {
            seed,
            controller: ControllerConfig {
                lease: Some(LeaseConfig {
                    interval,
                    ..LeaseConfig::default()
                }),
                ..ControllerConfig::default()
            },
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let mic3 = star.nodes[3]
        .boxy
        .start_audio_source(Box::new(Speech::new(2)));
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let fan_out: Vec<usize> = (1..boxes.min(8)).collect();
    let controller = star.controller.clone();
    let switch = star.switch.clone();
    let done = Rc::new(StdCell::new(false));
    let routes_after = Rc::new(StdCell::new(usize::MAX));
    let debt_dead = Rc::new(StdCell::new(0usize));
    let debt_rejoin = Rc::new(StdCell::new(usize::MAX));
    let detect_ns = Rc::new(StdCell::new(0u64));
    let readmitted = Rc::new(StdCell::new(0u32));
    let recv_at_rejoin = Rc::new(StdCell::new(0u64));
    let node3_box = star.nodes[3].boxy.clone();
    let (d, ra, dd, dr, dn, rr, rar) = (
        done.clone(),
        routes_after.clone(),
        debt_dead.clone(),
        debt_rejoin.clone(),
        detect_ns.clone(),
        readmitted.clone(),
        recv_at_rejoin.clone(),
    );
    sim.spawn("driver", async move {
        let s0 = controller
            .open(endpoints[0], mic0, StreamClass::Audio)
            .unwrap();
        let s3 = controller
            .open(endpoints[3], mic3, StreamClass::Audio)
            .unwrap();
        for &dst in &fan_out {
            controller.add_listener(s0, endpoints[dst]).await.unwrap();
        }
        controller
            .add_listener(s3, endpoints[boxes - 1])
            .await
            .unwrap();
        // The crash lands at 2 s; wait for the lease to die and the
        // reconvergence to run, then snapshot what it left behind.
        while controller.crashes() == 0 {
            pandora_sim::delay(SimDuration::from_millis(50)).await;
        }
        ra.set(switch.port_route_count(3));
        dd.set(controller.stale_debt(endpoints[3]));
        dn.set(controller.detect_latency_mean_ns() as u64);
        // The restart lands at 6.5 s; wait for the revived lease to
        // settle the stale debt, then re-admit node3 normally.
        while controller.rejoins() == 0 {
            pandora_sim::delay(SimDuration::from_millis(100)).await;
        }
        dr.set(controller.stale_debt(endpoints[3]));
        rar.set(node3_box.speaker.segments_received());
        let admitted = controller.add_listener(s0, endpoints[3]).await.unwrap();
        rr.set(admitted.rate_permille);
        d.set(true);
    });
    let plan = FaultPlan::default().crash_restart(
        "node3",
        SimDuration::from_secs(2),
        SimDuration::from_millis(4_500),
    );
    let trace = install(&sim.spawner(), &plan, &FaultTargets::new());
    sim.run_until(SimTime::from_secs(12));
    assert!(done.get(), "driver never completed the rejoin");
    let node_report = star
        .nodes
        .iter()
        .map(|n| {
            format!(
                "recv={} lost={} late={} handled={} sinks={}",
                n.boxy.speaker.segments_received(),
                n.boxy.speaker.segments_lost(),
                n.boxy.speaker.late_ticks(),
                n.agent.handled(),
                n.agent.active_sinks(),
            )
        })
        .collect();
    // Survivors: everyone but the crashed box itself.
    let survivors = star.nodes.iter().enumerate().filter(|(i, _)| *i != 3);
    CrashOutcome {
        digest: star.controller.digest(),
        recovery_digest: star.controller.recovery_digest(),
        lease_digest: star.controller.lease_digest(),
        timeline: star.controller.recovery_timeline(),
        trace: trace.to_text(),
        node_report,
        crashes: star.controller.crashes(),
        rejoins: star.controller.rejoins(),
        detect_ns: detect_ns.get(),
        routes_after_reconverge: routes_after.get(),
        debt_while_dead: debt_dead.get(),
        debt_after_rejoin: debt_rejoin.get(),
        readmitted_rate: readmitted.get(),
        dead_recv_at_rejoin: recv_at_rejoin.get(),
        dead_recv_final: star.nodes[3].boxy.speaker.segments_received(),
        survivor_lost: survivors
            .clone()
            .map(|(_, n)| n.boxy.speaker.segments_lost())
            .sum(),
        survivor_late: survivors.map(|(_, n)| n.boxy.speaker.late_ticks()).sum(),
    }
}

/// The acceptance soak: a 16-box lease-guarded conference loses node3
/// mid-call. Detection within 20 heartbeat intervals, every route and
/// admission charge released, survivors glitch-free (P6), and the
/// restarted box rejoins through normal admission.
#[test]
fn crash_soak_sixteen_boxes_reconverges_glitch_free() {
    let out = run_crash_soak(16, 0xFA11);
    println!(
        "crash soak: {} | timeline:\n{}",
        out.recovery_digest, out.timeline
    );
    assert_eq!(out.crashes, 1, "exactly one reconvergence");
    assert_eq!(out.rejoins, 1, "exactly one rejoin settlement");
    // Detection: the missed-probe backoff walk costs at most
    // 1+1 + 2+1 + 4+1 + 8+1 = 19 intervals from the last renewal.
    assert!(
        out.detect_ns <= 20 * 100_000_000,
        "death detected too slowly: {} ns",
        out.detect_ns
    );
    // Reconvergence swept every route at the dead port except the
    // re-installed well-known control circuit...
    assert_eq!(
        out.routes_after_reconverge, 1,
        "stray routes left at the dead port"
    );
    // ...and recorded the unreachable box's charges as stale debt: its
    // sink for node0's session, and its own session's fan-out leg.
    assert_eq!(out.debt_while_dead, 2, "stale debt not recorded");
    assert_eq!(out.debt_after_rejoin, 0, "rejoin left debt unsettled");
    // The rejoin re-admitted node3 at full audio rate and its playback
    // resumed: admission works normally after settlement.
    assert_eq!(out.readmitted_rate, 1000, "audio never degraded");
    assert!(
        out.dead_recv_final > out.dead_recv_at_rejoin + 50,
        "no audio flowed after re-admission: {} -> {}",
        out.dead_recv_at_rejoin,
        out.dead_recv_final
    );
    // P6: nobody else noticed. Zero lost segments, zero late mix ticks
    // across all fifteen survivors, through detection, reconvergence
    // and rejoin.
    assert_eq!(out.survivor_lost, 0, "survivors lost segments");
    assert_eq!(out.survivor_late, 0, "survivors glitched");
    // The lease walked live -> suspect -> dead -> live, in that order.
    let (s, dd, l) = (
        out.timeline.find("node3 -> suspect").expect("suspected"),
        out.timeline.find("node3 -> dead").expect("died"),
        out.timeline.rfind("node3 -> live").expect("revived"),
    );
    assert!(
        s < dd && dd < l,
        "lease states out of order:\n{}",
        out.timeline
    );
}

/// Same seed, same crash, same recovery — byte for byte: the fault
/// trace, the lease and recovery digests, the state timeline and every
/// box's counters replay identically.
#[test]
fn crash_recovery_replays_byte_identically() {
    let a = run_crash_soak(6, 0xD1CE);
    let b = run_crash_soak(6, 0xD1CE);
    assert_eq!(a.trace, b.trace, "fault trace diverged");
    assert_eq!(a.digest, b.digest, "controller digest diverged");
    assert_eq!(a.recovery_digest, b.recovery_digest);
    assert_eq!(a.lease_digest, b.lease_digest);
    assert_eq!(a.timeline, b.timeline, "state timeline diverged");
    assert_eq!(a.node_report, b.node_report, "box counters diverged");
}

/// The counter-scenario: with leases disabled the crash is never
/// noticed — the dead box's fabric route and admission charge leak for
/// the rest of the run, and its agent holds its sink forever.
#[test]
fn leases_disabled_crash_leaks_routes_and_charges() {
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        6,
        StarConfig {
            seed: 0xFA11,
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let eps = endpoints.clone();
    let controller = star.controller.clone();
    let session = Rc::new(StdCell::new(0u32));
    let s = session.clone();
    sim.spawn("driver", async move {
        let endpoints = eps;
        let s0 = controller
            .open(endpoints[0], mic0, StreamClass::Audio)
            .unwrap();
        for &dst in &endpoints[1..=3] {
            controller.add_listener(s0, dst).await.unwrap();
        }
        s.set(s0);
    });
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(2),
        None,
        FaultKind::BoxCrash {
            name: "node3".to_string(),
        },
    );
    let _trace = install(&sim.spawner(), &plan, &FaultTargets::new());
    sim.run_until(SimTime::from_secs(8));
    // Nothing ever detected the death: no lease, no reconvergence.
    assert_eq!(star.controller.lease_state(endpoints[3]), None);
    assert_eq!(star.controller.crashes(), 0);
    // The leak: the dead box's data leg still routed at the fabric
    // (alongside its control circuit), its admission charge still held
    // upstream, its agent still holding the sink it can never release.
    assert_eq!(
        star.switch.port_route_count(3),
        2,
        "expected the leaked leg plus the control circuit"
    );
    assert_eq!(
        star.controller.granted_rate(session.get(), endpoints[3]),
        Some(1000),
        "the dead listener's admission charge should leak"
    );
    assert_eq!(star.nodes[3].agent.active_sinks(), 1, "stale sink");
}

/// A box configuration with the P8 health monitor enabled.
fn health_box(name: &'static str) -> BoxConfig {
    let mut cfg = BoxConfig::standard(name);
    cfg.health = Some(HealthConfig::default());
    cfg
}

/// P8 under fault injection: sustained cell loss toward one member
/// engages its *local* audio muting (clean silence instead of gravel,
/// P2 — the stream itself is never degraded), and the hysteresis
/// restores normal playback after the loss clears. No controller round
/// trip is involved; the lease stays live throughout.
#[test]
fn p8_sustained_loss_mutes_locally_then_restores() {
    let mut sim = Simulation::new();
    let star = Star::build(
        &sim.spawner(),
        3,
        StarConfig {
            seed: 0x9EA1,
            box_config: health_box,
            controller: ControllerConfig {
                // Heartbeats share the lossy attachment, so the lease
                // must out-wait a transient burst that P8 handles
                // locally: suspicion is fine, death is not.
                lease: Some(LeaseConfig {
                    dead_after: 8,
                    ..LeaseConfig::default()
                }),
                ..ControllerConfig::default()
            },
            ..Default::default()
        },
    );
    let mic0 = star.nodes[0]
        .boxy
        .start_audio_source(Box::new(Speech::new(1)));
    let endpoints: Vec<_> = star.nodes.iter().map(|n| n.endpoint).collect();
    let eps = endpoints.clone();
    let controller = star.controller.clone();
    sim.spawn("driver", async move {
        let s0 = controller.open(eps[0], mic0, StreamClass::Audio).unwrap();
        controller.add_listener(s0, eps[1]).await.unwrap();
    });
    let mut targets = FaultTargets::new();
    for (name, ctrl) in star.path_controls() {
        targets.register_path(name, ctrl.clone());
    }
    // Half the cells toward node1 vanish for 2 s: far beyond the 5%
    // degrade threshold, sustained across many 250 ms windows.
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(2),
        Some(SimDuration::from_secs(2)),
        FaultKind::CellLossBurst {
            path: "node1.ba".to_string(),
            prob: 0.5,
        },
    );
    let _trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(3));
    let speaker = &star.nodes[1].boxy.speaker;
    assert!(
        speaker.muted(),
        "sustained 50% loss never engaged the local mute"
    );
    sim.run_until(SimTime::from_secs(7));
    assert!(
        !speaker.muted(),
        "hysteresis never restored playback after the loss cleared"
    );
    assert!(
        speaker.muted_ticks() > 200,
        "mute window too short: {} ticks",
        speaker.muted_ticks()
    );
    let health = star.nodes[1].boxy.health.as_ref().expect("health enabled");
    assert!(health.windows() >= 20, "monitor never ticked");
    // The burst cost some heartbeats too — the lease may have been
    // suspected — but the tolerant threshold out-waited it: no death,
    // no reconvergence. P8 adaptation stayed strictly local.
    assert_eq!(
        star.controller.lease_state(endpoints[1]),
        Some(LeaseState::Live)
    );
    assert_eq!(star.controller.crashes(), 0);
}
