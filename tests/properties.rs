//! Randomized property tests over the core data structures and invariants.
//!
//! These used to run under `proptest`; the offline build vendors no
//! shrinking framework, so each property now draws a few hundred cases
//! from a fixed-seed [`rand::rngs::SmallRng`]. Failures print the case
//! seed, which reproduces the exact inputs deterministically.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pandora_audio::{mulaw, Block};
use pandora_buffers::{Clawback, ClawbackConfig, ClawbackPool};
use pandora_metrics::Histogram;
use pandora_segment::{
    reseg, wire, AudioSegment, Segment, SeqTracker, SequenceNumber, TestSegment, Timestamp,
    VideoCompression, VideoHeader, VideoSegment, BLOCK_BYTES,
};
use pandora_video::dpcm::{compress_line, decompress_line, LineMode};
use pandora_video::RateFraction;

/// Number of random cases drawn per property.
const CASES: u64 = 256;

fn rng_for(property: &str, case: u64) -> SmallRng {
    // Mix the property name into the seed so properties draw distinct
    // streams; the case index is printed by assertions for replay.
    let tag: u64 = property.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    SmallRng::seed_from_u64(tag ^ case)
}

fn random_bytes(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

/// Wire encode → decode is the identity for any audio segment.
#[test]
fn audio_segment_wire_round_trip() {
    for case in 0..CASES {
        let mut rng = rng_for("audio_wire", case);
        let blocks = rng.gen_range(1usize..16);
        let fill = rng.gen_range(0u8..=255);
        let seg = Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(rng.gen_range(0u32..=u32::MAX)),
            Timestamp(rng.gen_range(0u32..=u32::MAX)),
            vec![fill; blocks * BLOCK_BYTES],
        ));
        let bytes = wire::encode(&seg);
        assert_eq!(wire::decode(&bytes).unwrap(), seg, "case {case}");
    }
}

/// Wire round trip for arbitrary video geometry and payload.
#[test]
fn video_segment_wire_round_trip() {
    for case in 0..CASES {
        let mut rng = rng_for("video_wire", case);
        let args: Vec<u32> = (0..rng.gen_range(0usize..4))
            .map(|_| rng.gen_range(0u32..=u32::MAX))
            .collect();
        let data_len = rng.gen_range(0usize..512);
        let seg = Segment::Video(VideoSegment::new(
            SequenceNumber(rng.gen_range(0u32..=u32::MAX)),
            Timestamp(0),
            VideoHeader {
                frame_number: rng.gen_range(0u32..=u32::MAX),
                segments_in_frame: 4,
                segment_number: 1,
                x_offset: rng.gen_range(0u32..1024),
                y_offset: rng.gen_range(0u32..1024),
                pixel_format: pandora_segment::PixelFormat::Mono8,
                compression: VideoCompression::Dpcm,
                compression_args: args,
                width: rng.gen_range(1u32..512),
                start_line: 0,
                lines: rng.gen_range(1u32..64),
                data_length: 0,
            },
            random_bytes(&mut rng, data_len),
        ));
        let bytes = wire::encode(&seg);
        assert_eq!(wire::decode(&bytes).unwrap(), seg, "case {case}");
    }
}

/// Test segments round trip too.
#[test]
fn test_segment_wire_round_trip() {
    for case in 0..CASES {
        let mut rng = rng_for("test_wire", case);
        let len = rng.gen_range(0usize..256);
        let data = random_bytes(&mut rng, len);
        let seg = Segment::Test(TestSegment::new(SequenceNumber(1), Timestamp(2), data));
        assert_eq!(
            wire::decode(&wire::encode(&seg)).unwrap(),
            seg,
            "case {case}"
        );
    }
}

/// Decoding arbitrary bytes never panics.
#[test]
fn wire_decode_never_panics() {
    for case in 0..CASES * 4 {
        let mut rng = rng_for("decode_fuzz", case);
        let len = rng.gen_range(0usize..256);
        let bytes = random_bytes(&mut rng, len);
        let _ = wire::decode(&bytes);
    }
    // Also corrupt valid encodings byte-by-byte: decode must error or
    // round-trip, never panic.
    let seg = Segment::Audio(AudioSegment::from_blocks(
        SequenceNumber(3),
        Timestamp(4),
        vec![0x41; 2 * BLOCK_BYTES],
    ));
    let good = wire::encode(&seg);
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        let _ = wire::decode(&bad);
    }
}

/// µ-law: |decode(encode(x)) - x| is within the segment quantisation
/// bound, and encode has sign symmetry in the decoded domain.
#[test]
fn mulaw_error_bound_and_symmetry() {
    for pcm in -32767i16..=32767 {
        let out = mulaw::decode(mulaw::encode(pcm));
        let err = (out - pcm as i32).abs();
        let allowed = 16 + (pcm as i32).abs() / 16 + 33; // Segment step + clip margin.
        assert!(err <= allowed, "pcm={pcm} out={out} err={err}");
        if pcm > 0 {
            assert_eq!(
                mulaw::decode(mulaw::encode(pcm)),
                -mulaw::decode(mulaw::encode(-pcm)),
                "pcm={pcm}"
            );
        }
    }
}

/// Re-segmentation never loses or reorders a byte of audio, for any
/// mixture of input segment sizes.
#[test]
fn resegmentation_preserves_audio() {
    for case in 0..CASES {
        let mut rng = rng_for("reseg", case);
        let sizes: Vec<usize> = (0..rng.gen_range(1usize..30))
            .map(|_| rng.gen_range(1usize..13))
            .collect();
        let mut segments = Vec::new();
        let mut byte = 0u8;
        let mut block_idx = 0u64;
        for (i, &blocks) in sizes.iter().enumerate() {
            let mut data = Vec::new();
            for _ in 0..blocks * BLOCK_BYTES {
                data.push(byte);
                byte = byte.wrapping_add(1);
            }
            segments.push(AudioSegment::from_blocks(
                SequenceNumber(i as u32),
                Timestamp::from_nanos(block_idx * 2_000_000),
                data,
            ));
            block_idx += blocks as u64;
        }
        let repo = reseg::to_repository_format(&segments);
        let before: Vec<u8> = segments.iter().flat_map(|s| s.data.clone()).collect();
        let after: Vec<u8> = repo.iter().flat_map(|s| s.data.clone()).collect();
        assert_eq!(before, after, "case {case}");
        // All but the last segment are exactly 20 blocks.
        for s in &repo[..repo.len().saturating_sub(1)] {
            assert_eq!(s.block_count(), 20, "case {case}");
        }
    }
}

/// Clawback invariants: length never exceeds the cap; pool accounting
/// is exact; served + queued == accepted.
#[test]
fn clawback_invariants() {
    for case in 0..64 {
        let mut rng = rng_for("clawback", case);
        let ops = rng.gen_range(1usize..2000);
        let pool = ClawbackPool::new(64);
        let mut buf = Clawback::with_pool(
            ClawbackConfig {
                per_stream_limit_blocks: 10,
                count_threshold: 50,
                ..Default::default()
            },
            pool.clone(),
        );
        for _ in 0..ops {
            if rng.gen_bool(0.5) {
                let _ = buf.arrival(0u32);
            } else {
                let _ = buf.tick();
            }
            assert!(buf.len() <= 10, "case {case}");
            assert_eq!(pool.used(), buf.len(), "case {case}");
            let s = buf.stats();
            assert_eq!(s.accepted, s.served + buf.len() as u64, "case {case}");
            assert_eq!(
                s.arrivals,
                s.accepted + s.clawed_back + s.over_limit + s.pool_full,
                "case {case}"
            );
        }
    }
}

/// Sequence tracker: lost + received counts expected deliveries for any
/// monotone arrival pattern with gaps.
#[test]
fn seq_tracker_accounting() {
    for case in 0..CASES {
        let mut rng = rng_for("seqtrack", case);
        let gaps: Vec<u32> = (0..rng.gen_range(1usize..100))
            .map(|_| rng.gen_range(0u32..5))
            .collect();
        let mut t = SeqTracker::new();
        let mut seq = SequenceNumber(0);
        let mut expected_lost = 0u64;
        for (i, &gap) in gaps.iter().enumerate() {
            for _ in 0..gap {
                seq = seq.next(); // Skipped segments.
            }
            // A gap before the very first arrival is undetectable: the
            // tracker accepts any starting sequence number.
            if i > 0 {
                expected_lost += gap as u64;
            }
            t.observe(seq);
            seq = seq.next();
        }
        assert_eq!(t.lost(), expected_lost, "case {case}");
        assert_eq!(t.received(), gaps.len() as u64, "case {case}");
    }
}

/// Histogram percentiles are order statistics: bounded by min/max and
/// monotone in p.
#[test]
fn histogram_percentile_properties() {
    for case in 0..CASES {
        let mut rng = rng_for("histogram", case);
        let n = rng.gen_range(1usize..200);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e6f64..1e6)).collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let p10 = h.percentile(10.0);
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        assert!(
            h.min() <= p10 && p10 <= p50 && p50 <= p90 && p90 <= h.max(),
            "case {case}"
        );
        assert_eq!(h.count(), values.len(), "case {case}");
    }
}

/// DPCM: any pixel line decompresses to the right width with bounded
/// error (raw mode: exact).
#[test]
fn dpcm_round_trip_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for("dpcm", case);
        let width = rng.gen_range(1usize..256);
        let line = random_bytes(&mut rng, width);
        let raw = compress_line(&line, LineMode::Raw);
        assert_eq!(decompress_line(&raw, width).unwrap(), line, "case {case}");
        let d = decompress_line(&compress_line(&line, LineMode::Dpcm), width).unwrap();
        assert_eq!(d.len(), width, "case {case}");
        let d2 = decompress_line(&compress_line(&line, LineMode::DpcmSub2), width).unwrap();
        assert_eq!(d2.len(), width, "case {case}");
    }
}

/// Rate fractions: over any window of q*25 frames, exactly p*25 are
/// captured.
#[test]
fn rate_fraction_exact_count() {
    for p in 1u32..10 {
        for q in p..10 {
            let r = RateFraction::new(p, q);
            let window = (q * 25) as u64;
            let captured = (0..window).filter(|&n| r.captures_frame(n)).count() as u32;
            assert_eq!(captured, p * 25, "p={p} q={q}");
        }
    }
}

/// AAL: any frame splits into cells and reassembles byte-identically,
/// and interleaving two circuits never cross-contaminates.
#[test]
fn aal_round_trip_and_isolation() {
    use pandora_atm::{segment_to_cells, Reassembler, Vci};
    for case in 0..CASES {
        let mut rng = rng_for("aal", case);
        let la = rng.gen_range(0usize..500);
        let lb = rng.gen_range(0usize..500);
        let fa = random_bytes(&mut rng, la);
        let fb = random_bytes(&mut rng, lb);
        let ca = segment_to_cells(Vci(1), &fa, 0);
        let cb = segment_to_cells(Vci(2), &fb, 0);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        let mut ia = ca.into_iter();
        let mut ib = cb.into_iter();
        loop {
            let mut any = false;
            if let Some(c) = ia.next() {
                any = true;
                if let Some(f) = r.push(c) {
                    out.push(f);
                }
            }
            if let Some(c) = ib.next() {
                any = true;
                if let Some(f) = r.push(c) {
                    out.push(f);
                }
            }
            if !any {
                break;
            }
        }
        assert_eq!(out.len(), 2, "case {case}");
        for (vci, frame) in out {
            if vci == Vci(1) {
                assert_eq!(&frame, &fa, "case {case}");
            } else {
                assert_eq!(&frame, &fb, "case {case}");
            }
        }
    }
}

/// Hold-back buffer conservation: every description pushed is either
/// released (in order) or still held; slices release everything held.
#[test]
fn holdback_conserves_descriptions() {
    use pandora_video::slice::{HoldbackBuffer, SliceDesc};
    for case in 0..CASES {
        let mut rng = rng_for("holdback", case);
        let n = rng.gen_range(1usize..100);
        let mut hb = HoldbackBuffer::<u32>::new();
        let mut pushed = 0usize;
        let mut released = 0usize;
        for i in 0..n {
            let desc = match rng.gen_range(0u8..3) {
                0 => SliceDesc::Slice {
                    lines: 1,
                    bytes: i as u32,
                },
                1 => SliceDesc::Head(i as u32),
                _ => SliceDesc::Tail,
            };
            pushed += 1;
            released += hb.push(desc).len();
            assert_eq!(pushed, released + hb.held().len(), "case {case}");
            // Held prefix is always exactly one slice (if anything is held).
            if let Some(first) = hb.held().first() {
                assert!(matches!(first, SliceDesc::Slice { .. }), "case {case}");
            }
        }
    }
}

/// Muting: the gain only ever takes the three configured values, and
/// any sufficiently long quiet tail returns it to full volume.
#[test]
fn muting_state_machine_bounds() {
    use pandora_audio::{MuteStage, Muting, MutingConfig};
    for case in 0..CASES {
        let mut rng = rng_for("muting", case);
        let n = rng.gen_range(1usize..200);
        let mut m = Muting::new(MutingConfig::default());
        let loud = Block([pandora_audio::mulaw::encode(20_000); BLOCK_BYTES]);
        for _ in 0..n {
            m.observe_speaker(if rng.gen_bool(0.5) {
                &loud
            } else {
                &Block::SILENCE
            });
            let f = m.factor();
            assert!(
                f == 0.2 || f == 0.5 || f == 1.0,
                "factor {f} in case {case}"
            );
        }
        // 23 quiet blocks clear the deep hold, 11 more clear the half hold.
        for _ in 0..40 {
            m.observe_speaker(&Block::SILENCE);
        }
        assert_eq!(m.stage(), MuteStage::Full, "case {case}");
    }
}

/// Mixing silence with any block is that block (identity element).
#[test]
fn mix_silence_identity() {
    for case in 0..CASES {
        let mut rng = rng_for("mix_identity", case);
        let samples = random_bytes(&mut rng, BLOCK_BYTES);
        let b = Block::from_slice(&samples);
        let mixed = pandora_audio::mix_blocks([&b, &Block::SILENCE]);
        // Equality in the decoded domain (the codeword for -0/+0 differs).
        for (m, o) in mixed.0.iter().zip(b.0.iter()) {
            assert_eq!(mulaw::decode(*m), mulaw::decode(*o), "case {case}");
        }
    }
}
