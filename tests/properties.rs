//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use pandora_audio::{mulaw, Block};
use pandora_buffers::{Clawback, ClawbackConfig, ClawbackPool};
use pandora_metrics::Histogram;
use pandora_segment::{
    reseg, wire, AudioSegment, Segment, SeqTracker, SequenceNumber, TestSegment, Timestamp,
    VideoCompression, VideoHeader, VideoSegment, BLOCK_BYTES,
};
use pandora_video::dpcm::{compress_line, decompress_line, LineMode};
use pandora_video::RateFraction;

proptest! {
    /// Wire encode → decode is the identity for any audio segment.
    #[test]
    fn audio_segment_wire_round_trip(
        seq in any::<u32>(),
        ts in any::<u32>(),
        blocks in 1usize..16,
        fill in any::<u8>(),
    ) {
        let seg = Segment::Audio(AudioSegment::from_blocks(
            SequenceNumber(seq),
            Timestamp(ts),
            vec![fill; blocks * BLOCK_BYTES],
        ));
        let bytes = wire::encode(&seg);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), seg);
    }

    /// Wire round trip for arbitrary video geometry and payload.
    #[test]
    fn video_segment_wire_round_trip(
        seq in any::<u32>(),
        frame in any::<u32>(),
        x in 0u32..1024,
        y in 0u32..1024,
        width in 1u32..512,
        lines in 1u32..64,
        args in proptest::collection::vec(any::<u32>(), 0..4),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let seg = Segment::Video(VideoSegment::new(
            SequenceNumber(seq),
            Timestamp(0),
            VideoHeader {
                frame_number: frame,
                segments_in_frame: 4,
                segment_number: 1,
                x_offset: x,
                y_offset: y,
                pixel_format: pandora_segment::PixelFormat::Mono8,
                compression: VideoCompression::Dpcm,
                compression_args: args,
                width,
                start_line: 0,
                lines,
                data_length: 0,
            },
            data,
        ));
        let bytes = wire::encode(&seg);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), seg);
    }

    /// Test segments round trip too.
    #[test]
    fn test_segment_wire_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let seg = Segment::Test(TestSegment::new(SequenceNumber(1), Timestamp(2), data));
        prop_assert_eq!(wire::decode(&wire::encode(&seg)).unwrap(), seg);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode(&bytes);
    }

    /// µ-law: |decode(encode(x)) - x| is within the segment quantisation
    /// bound, and encode is monotone in the decoded domain.
    #[test]
    fn mulaw_error_bound(pcm in -32767i16..=32767) {
        let out = mulaw::decode(mulaw::encode(pcm));
        let err = (out - pcm as i32).abs();
        let allowed = 16 + (pcm as i32).abs() / 16 + 33; // Segment step + clip margin.
        prop_assert!(err <= allowed, "pcm={} out={} err={}", pcm, out, err);
    }

    /// µ-law sign symmetry.
    #[test]
    fn mulaw_sign_symmetry(pcm in 1i16..=32767) {
        prop_assert_eq!(mulaw::decode(mulaw::encode(pcm)), -mulaw::decode(mulaw::encode(-pcm)));
    }

    /// Re-segmentation never loses or reorders a byte of audio, for any
    /// mixture of input segment sizes.
    #[test]
    fn resegmentation_preserves_audio(
        sizes in proptest::collection::vec(1usize..13, 1..30),
    ) {
        let mut segments = Vec::new();
        let mut byte = 0u8;
        let mut block_idx = 0u64;
        for (i, &blocks) in sizes.iter().enumerate() {
            let mut data = Vec::new();
            for _ in 0..blocks * BLOCK_BYTES {
                data.push(byte);
                byte = byte.wrapping_add(1);
            }
            segments.push(AudioSegment::from_blocks(
                SequenceNumber(i as u32),
                Timestamp::from_nanos(block_idx * 2_000_000),
                data,
            ));
            block_idx += blocks as u64;
        }
        let repo = reseg::to_repository_format(&segments);
        let before: Vec<u8> = segments.iter().flat_map(|s| s.data.clone()).collect();
        let after: Vec<u8> = repo.iter().flat_map(|s| s.data.clone()).collect();
        prop_assert_eq!(before, after);
        // All but the last segment are exactly 20 blocks.
        for s in &repo[..repo.len().saturating_sub(1)] {
            prop_assert_eq!(s.block_count(), 20);
        }
    }

    /// Clawback invariants: length never exceeds the cap; pool accounting
    /// is exact; served + queued == accepted.
    #[test]
    fn clawback_invariants(ops in proptest::collection::vec(any::<bool>(), 1..2000)) {
        let pool = ClawbackPool::new(64);
        let mut buf = Clawback::with_pool(
            ClawbackConfig { per_stream_limit_blocks: 10, count_threshold: 50, ..Default::default() },
            pool.clone(),
        );
        for &is_arrival in &ops {
            if is_arrival {
                let _ = buf.arrival(0u32);
            } else {
                let _ = buf.tick();
            }
            prop_assert!(buf.len() <= 10);
            prop_assert_eq!(pool.used(), buf.len());
            let s = buf.stats();
            prop_assert_eq!(s.accepted, s.served + buf.len() as u64);
            prop_assert_eq!(
                s.arrivals,
                s.accepted + s.clawed_back + s.over_limit + s.pool_full
            );
        }
    }

    /// Sequence tracker: lost + received counts expected deliveries for any
    /// monotone arrival pattern with gaps.
    #[test]
    fn seq_tracker_accounting(gaps in proptest::collection::vec(0u32..5, 1..100)) {
        let mut t = SeqTracker::new();
        let mut seq = SequenceNumber(0);
        let mut expected_lost = 0u64;
        for (i, &gap) in gaps.iter().enumerate() {
            for _ in 0..gap {
                seq = seq.next(); // Skipped segments.
            }
            // A gap before the very first arrival is undetectable: the
            // tracker accepts any starting sequence number.
            if i > 0 {
                expected_lost += gap as u64;
            }
            t.observe(seq);
            seq = seq.next();
        }
        prop_assert_eq!(t.lost(), expected_lost);
        prop_assert_eq!(t.received(), gaps.len() as u64);
    }

    /// Histogram percentiles are order statistics: bounded by min/max and
    /// monotone in p.
    #[test]
    fn histogram_percentile_properties(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let p10 = h.percentile(10.0);
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        prop_assert!(h.min() <= p10 && p10 <= p50 && p50 <= p90 && p90 <= h.max());
        prop_assert_eq!(h.count(), values.len());
    }

    /// DPCM: any pixel line decompresses to the right width with bounded
    /// error (raw mode: exact).
    #[test]
    fn dpcm_round_trip_bounds(line in proptest::collection::vec(any::<u8>(), 1..256)) {
        let width = line.len();
        let raw = compress_line(&line, LineMode::Raw);
        prop_assert_eq!(decompress_line(&raw, width).unwrap(), line.clone());
        let d = decompress_line(&compress_line(&line, LineMode::Dpcm), width).unwrap();
        prop_assert_eq!(d.len(), width);
        let d2 = decompress_line(&compress_line(&line, LineMode::DpcmSub2), width).unwrap();
        prop_assert_eq!(d2.len(), width);
    }

    /// Rate fractions: over any window of q*25 frames, exactly p*25 are
    /// captured.
    #[test]
    fn rate_fraction_exact_count(p in 1u32..10, q in 1u32..10) {
        prop_assume!(p <= q);
        let r = RateFraction::new(p, q);
        let window = (q * 25) as u64;
        let captured = (0..window).filter(|&n| r.captures_frame(n)).count() as u32;
        prop_assert_eq!(captured, p * 25);
    }

    /// AAL: any frame splits into cells and reassembles byte-identically,
    /// and interleaving two circuits never cross-contaminates.
    #[test]
    fn aal_round_trip_and_isolation(
        fa in proptest::collection::vec(any::<u8>(), 0..500),
        fb in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        use pandora_atm::{segment_to_cells, Reassembler, Vci};
        let ca = segment_to_cells(Vci(1), &fa, 0);
        let cb = segment_to_cells(Vci(2), &fb, 0);
        let mut r = Reassembler::new();
        let mut out = Vec::new();
        let mut ia = ca.into_iter();
        let mut ib = cb.into_iter();
        loop {
            let mut any = false;
            if let Some(c) = ia.next() {
                any = true;
                if let Some(f) = r.push(c) {
                    out.push(f);
                }
            }
            if let Some(c) = ib.next() {
                any = true;
                if let Some(f) = r.push(c) {
                    out.push(f);
                }
            }
            if !any {
                break;
            }
        }
        prop_assert_eq!(out.len(), 2);
        for (vci, frame) in out {
            if vci == Vci(1) {
                prop_assert_eq!(&frame, &fa);
            } else {
                prop_assert_eq!(&frame, &fb);
            }
        }
    }

    /// Hold-back buffer conservation: every description pushed is either
    /// released (in order) or still held; slices release everything held.
    #[test]
    fn holdback_conserves_descriptions(ops in proptest::collection::vec(0u8..3, 1..100)) {
        use pandora_video::slice::{HoldbackBuffer, SliceDesc};
        let mut hb = HoldbackBuffer::<u32>::new();
        let mut pushed = 0usize;
        let mut released = 0usize;
        for (i, &op) in ops.iter().enumerate() {
            let desc = match op {
                0 => SliceDesc::Slice { lines: 1, bytes: i as u32 },
                1 => SliceDesc::Head(i as u32),
                _ => SliceDesc::Tail,
            };
            pushed += 1;
            released += hb.push(desc).len();
            prop_assert_eq!(pushed, released + hb.held().len());
            // Held prefix is always exactly one slice (if anything is held).
            if let Some(first) = hb.held().first() {
                let is_slice = matches!(first, SliceDesc::Slice { .. });
                prop_assert!(is_slice);
            }
        }
    }

    /// Muting: the gain only ever takes the three configured values, and
    /// any sufficiently long quiet tail returns it to full volume.
    #[test]
    fn muting_state_machine_bounds(pattern in proptest::collection::vec(any::<bool>(), 1..200)) {
        use pandora_audio::{MuteStage, Muting, MutingConfig};
        let mut m = Muting::new(MutingConfig::default());
        let loud = Block([pandora_audio::mulaw::encode(20_000); BLOCK_BYTES]);
        for &is_loud in &pattern {
            m.observe_speaker(if is_loud { &loud } else { &Block::SILENCE });
            let f = m.factor();
            prop_assert!(f == 0.2 || f == 0.5 || f == 1.0, "factor {}", f);
        }
        // 23 quiet blocks clear the deep hold, 11 more clear the half hold.
        for _ in 0..40 {
            m.observe_speaker(&Block::SILENCE);
        }
        prop_assert_eq!(m.stage(), MuteStage::Full);
    }

    /// Mixing silence with any block is that block (identity element).
    #[test]
    fn mix_silence_identity(samples in proptest::collection::vec(any::<u8>(), BLOCK_BYTES)) {
        let b = Block::from_slice(&samples);
        let mixed = pandora_audio::mix_blocks([&b, &Block::SILENCE]);
        // Equality in the decoded domain (the codeword for -0/+0 differs).
        for (m, o) in mixed.0.iter().zip(b.0.iter()) {
            prop_assert_eq!(mulaw::decode(*m), mulaw::decode(*o));
        }
    }
}
