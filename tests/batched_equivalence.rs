//! Batched-vs-scalar equivalence: the burst transport, fixed-point
//! mixing and slice DPCM paths must be byte-identical to the per-unit
//! reference paths they replace, across seeds and under fault plans.
//!
//! Every hot path in this PR ships in two forms — the batched form the
//! pipeline runs and the scalar form kept as the conformance oracle —
//! and this suite pins them together: same frames, same counters, same
//! bytes, for 10 seeds each.

use pandora_atm::{
    build_path_controlled, segment_to_burst, segment_to_cells, Cell, CellBurst, HopConfig,
    Reassembler, SlabReassembler, SwitchCore, Vci,
};
use pandora_audio::{mix_blocks, mix_blocks_scalar, mix_blocks_scaled, Block, Q15};
use pandora_buffers::ByteSlab;
use pandora_sim::Simulation;
use pandora_video::dpcm::{
    compress_line, compress_slice, decompress_line, decompress_slice, LineMode,
};
use std::cell::RefCell;
use std::rc::Rc;

const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

/// A small deterministic generator (xorshift64*), so the suite needs no
/// RNG dependency and every seed reproduces exactly.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    fn frame(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.range(0, max_len);
        (0..len).map(|_| self.byte()).collect()
    }
}

#[test]
fn segment_to_burst_matches_segment_to_cells() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        let mut seq = 0u32;
        for _ in 0..20 {
            let frame = g.frame(400);
            let vci = Vci(g.range(1, 5) as u32);
            let burst = segment_to_burst(vci, &frame, seq);
            let cells = segment_to_cells(vci, &frame, seq);
            assert_eq!(burst.cells(), &cells[..], "seed {seed}");
            seq = seq.wrapping_add(cells.len() as u32);
        }
    }
}

#[test]
fn reassembler_burst_path_matches_per_cell_path() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        let mut scalar = Reassembler::new();
        let mut batched = Reassembler::new();
        let mut seqs = [0u32; 4];
        for _ in 0..30 {
            let vci_idx = g.range(0, 3);
            let frame = g.frame(300);
            let mut cells = segment_to_cells(Vci(vci_idx as u32 + 1), &frame, seqs[vci_idx]);
            seqs[vci_idx] = seqs[vci_idx].wrapping_add(cells.len() as u32);
            // Drop a cell sometimes to exercise the gap/poison path.
            if cells.len() > 1 && g.range(0, 3) == 0 {
                let victim = g.range(0, cells.len() - 1);
                cells.remove(victim);
            }
            let scalar_frames: Vec<_> = cells
                .iter()
                .cloned()
                .filter_map(|c| scalar.push(c))
                .collect();
            let batched_frames: Vec<_> = CellBurst::split_runs(cells)
                .into_iter()
                .filter_map(|b| batched.push_burst(b))
                .collect();
            assert_eq!(scalar_frames, batched_frames, "seed {seed}");
        }
        assert_eq!(scalar.frames_ok(), batched.frames_ok(), "seed {seed}");
        assert_eq!(
            scalar.frames_discarded(),
            batched.frames_discarded(),
            "seed {seed}"
        );
    }
}

#[test]
fn slab_reassembler_burst_path_matches_per_cell_path() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        // A small slab so exhaustion and oversize discards get exercised.
        let mut scalar = SlabReassembler::new(ByteSlab::new(4, 256));
        let mut batched = SlabReassembler::new(ByteSlab::new(4, 256));
        let mut seq = 0u32;
        for _ in 0..30 {
            let frame = g.frame(400);
            let mut cells = segment_to_cells(Vci(1), &frame, seq);
            seq = seq.wrapping_add(cells.len() as u32);
            if cells.len() > 1 && g.range(0, 3) == 0 {
                let victim = g.range(0, cells.len() - 1);
                cells.remove(victim);
            }
            let scalar_frames: Vec<Vec<u8>> = cells
                .iter()
                .cloned()
                .filter_map(|c| scalar.push(c))
                .map(|(_, r)| r.with(|b| b.to_vec()))
                .collect();
            let batched_frames: Vec<Vec<u8>> = CellBurst::split_runs(cells)
                .into_iter()
                .filter_map(|b| batched.push_burst(b))
                .map(|(_, r)| r.with(|b| b.to_vec()))
                .collect();
            assert_eq!(scalar_frames, batched_frames, "seed {seed}");
        }
        assert_eq!(scalar.frames_ok(), batched.frames_ok(), "seed {seed}");
        assert_eq!(
            scalar.frames_discarded(),
            batched.frames_discarded(),
            "seed {seed}"
        );
        assert_eq!(
            scalar.alloc_failures(),
            batched.alloc_failures(),
            "seed {seed}"
        );
    }
}

#[test]
fn switch_burst_dispatch_matches_cell_dispatch() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        let build = |g: &mut Gen| {
            // Small queues so overflow prefixes are part of the contract.
            let (core, rxs) = SwitchCore::new(4, 24);
            core.route(Vci(1), 0, Vci(101));
            core.route(Vci(2), 1, Vci(102));
            core.route_add(Vci(2), 2, Vci(103)); // Multicast.
            core.route(Vci(3), 9, Vci(104)); // Out-of-range port.
            let _ = g;
            (core, rxs)
        };
        let mut bursts = Vec::new();
        let mut seq = 0u32;
        for _ in 0..25 {
            let frame = g.frame(300);
            let vci = Vci(g.range(1, 4) as u32); // VCI 4 is unroutable.
            let b = segment_to_burst(vci, &frame, seq);
            seq = seq.wrapping_add(b.len() as u32);
            bursts.push(b);
        }
        let (scalar, scalar_rx) = build(&mut g);
        for b in &bursts {
            for c in b.cells() {
                scalar.dispatch_cell(c.clone());
            }
        }
        let (batched, batched_rx) = build(&mut g);
        for b in &bursts {
            batched.dispatch_burst(b);
        }
        for (port, (s, b)) in scalar_rx.iter().zip(batched_rx.iter()).enumerate() {
            let sv: Vec<Cell> = std::iter::from_fn(|| s.try_recv()).collect();
            let bv: Vec<Cell> = std::iter::from_fn(|| b.try_recv()).collect();
            assert_eq!(sv, bv, "seed {seed} port {port}");
        }
        let (sc, bc) = (scalar.counters(), batched.counters());
        assert_eq!(sc.forwarded(), bc.forwarded(), "seed {seed}");
        assert_eq!(sc.unroutable(), bc.unroutable(), "seed {seed}");
        assert_eq!(sc.overflow(), bc.overflow(), "seed {seed}");
    }
}

#[test]
fn burst_reassembly_matches_under_loss_and_corruption_faults() {
    // Cells that survive a seeded lossy/corrupting controlled path feed
    // per-cell reassembly and split_runs+burst reassembly; both must
    // produce identical frames and counters.
    for seed in SEEDS {
        let mut sim = Simulation::new();
        let (tx, rx, _stats, ctrl) = build_path_controlled(
            &sim.spawner(),
            "eq",
            &[HopConfig::clean(1_000_000_000)],
            seed,
        );
        ctrl.set_loss(0.05);
        ctrl.set_corruption(0.05);
        let mut g = Gen::new(seed ^ 0xBEEF);
        let mut all_cells = Vec::new();
        let mut seq = 0u32;
        for _ in 0..40 {
            let frame = g.frame(300);
            let cells = segment_to_cells(Vci(1), &frame, seq);
            seq = seq.wrapping_add(cells.len() as u32);
            all_cells.extend(cells);
        }
        sim.spawn("send", async move {
            for cell in all_cells {
                if tx.send(cell).await.is_err() {
                    return;
                }
            }
        });
        let survivors: Rc<RefCell<Vec<Cell>>> = Rc::default();
        let sink = survivors.clone();
        sim.spawn("recv", async move {
            while let Ok(cell) = rx.recv().await {
                sink.borrow_mut().push(cell);
            }
        });
        sim.run_until_idle();
        let survivors = survivors.borrow();
        assert!(
            ctrl.injected_drops() > 0,
            "seed {seed}: plan injected no loss"
        );

        let mut scalar = Reassembler::new();
        let scalar_frames: Vec<_> = survivors
            .iter()
            .cloned()
            .filter_map(|c| scalar.push(c))
            .collect();
        let mut batched = Reassembler::new();
        let batched_frames: Vec<_> = CellBurst::split_runs(survivors.iter().cloned())
            .into_iter()
            .filter_map(|b| batched.push_burst(b))
            .collect();
        assert_eq!(scalar_frames, batched_frames, "seed {seed}");
        assert_eq!(scalar.frames_ok(), batched.frames_ok(), "seed {seed}");
        assert_eq!(
            scalar.frames_discarded(),
            batched.frames_discarded(),
            "seed {seed}"
        );
    }
}

#[test]
fn fast_mix_matches_scalar_oracle() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        for _ in 0..20 {
            let blocks: Vec<Block> = (0..g.range(0, 64))
                .map(|_| Block(std::array::from_fn(|_| g.byte())))
                .collect();
            assert_eq!(
                mix_blocks(blocks.iter()),
                mix_blocks_scalar(blocks.iter()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn q15_scaled_mix_is_deterministic_and_exact_on_exact_gains() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        let blocks: Vec<Block> = (0..8)
            .map(|_| Block(std::array::from_fn(|_| g.byte())))
            .collect();
        let gains: Vec<Q15> = (0..8)
            .map(|_| Q15::from_raw(g.range(0, 1 << 15) as i32))
            .collect();
        let mix = |blocks: &[Block], gains: &[Q15]| {
            mix_blocks_scaled(blocks.iter().zip(gains.iter().copied()))
        };
        // Bit-identical on repeat evaluation (pure integer arithmetic).
        assert_eq!(mix(&blocks, &gains), mix(&blocks, &gains), "seed {seed}");
        // Unity gains reduce to the unscaled mixer exactly.
        let unity = vec![Q15::ONE; blocks.len()];
        assert_eq!(
            mix(&blocks, &unity),
            mix_blocks(blocks.iter()),
            "seed {seed}"
        );
    }
}

#[test]
fn dpcm_slice_codec_matches_per_line_codec() {
    for seed in SEEDS {
        let mut g = Gen::new(seed);
        for _ in 0..6 {
            let width = g.range(1, 80);
            let lines = g.range(1, 12);
            let pixels: Vec<u8> = (0..width * lines).map(|_| g.byte()).collect();
            for mode in [LineMode::Raw, LineMode::Dpcm, LineMode::DpcmSub2] {
                let batched = compress_slice(&pixels, width, mode);
                let per_line: Vec<u8> = pixels
                    .chunks_exact(width)
                    .flat_map(|row| compress_line(row, mode))
                    .collect();
                assert_eq!(batched, per_line, "seed {seed} {width}x{lines} {mode:?}");

                let slice_decoded = decompress_slice(&batched, width, lines);
                let mut line_decoded = Vec::with_capacity(width * lines);
                let mut off = 0;
                let mut ok = true;
                for _ in 0..lines {
                    match decompress_line(&per_line[off..], width) {
                        Some(px) => {
                            let mode_here = LineMode::from_header(per_line[off]).expect("header");
                            off += pandora_video::dpcm::compressed_line_bytes(width, mode_here);
                            line_decoded.extend(px);
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                let want = ok.then_some(line_decoded);
                assert_eq!(slice_decoded, want, "seed {seed} {width}x{lines} {mode:?}");
            }
        }
    }
}
