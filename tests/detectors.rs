//! Integration coverage for the dynamic misbehaviour detectors: the
//! executor's deadlock reporter ([`Simulation::deadlock_report`]) and
//! the segment pool's drop-time leak audit
//! ([`pandora_buffers::take_leak_report`]), each driven by a scenario
//! that actually misbehaves rather than a synthetic unit call.

use pandora_buffers::{take_leak_report, Pool};
use pandora_sim::{SimDuration, SimTime, Simulation};

#[test]
fn rendezvous_cycle_yields_named_deadlock_report() {
    let mut sim = Simulation::new();
    // A working handoff first: the detector must stay quiet on it.
    let (ok_tx, ok_rx) = pandora_sim::channel::<u32>();
    sim.spawn("warmup:send", async move {
        let _ = ok_tx.send(7).await;
    });
    sim.spawn("warmup:recv", async move {
        let _ = ok_rx.recv().await;
    });
    sim.run_until_idle();
    assert!(sim.deadlock_report().is_none(), "clean run flagged");

    // The classic occam cycle: two stages joined by rendezvous channels,
    // each insisting on sending before receiving.
    let (ab_tx, ab_rx) = pandora_sim::channel::<u32>();
    let (ba_tx, ba_rx) = pandora_sim::channel::<u32>();
    sim.spawn("stage:east", async move {
        pandora_sim::delay(SimDuration::from_millis(3)).await;
        if ab_tx.send(1).await.is_ok() {
            let _ = ba_rx.recv().await;
        }
    });
    sim.spawn("stage:west", async move {
        pandora_sim::delay(SimDuration::from_millis(3)).await;
        if ba_tx.send(2).await.is_ok() {
            let _ = ab_rx.recv().await;
        }
    });
    sim.run_until_idle();
    let report = sim.deadlock_report().expect("cycle must be detected");
    assert_eq!(report.at, SimTime::from_millis(3));
    assert!(
        report.blocked.iter().any(|n| n == "stage:east"),
        "east missing from {report}"
    );
    assert!(
        report.blocked.iter().any(|n| n == "stage:west"),
        "west missing from {report}"
    );
}

#[test]
fn leaked_descriptor_is_audited_on_pool_drop() {
    let _ = take_leak_report(); // clear any report from another test
    {
        // Declared before the simulation so it is the last pool handle
        // to drop — that is when the audit fires.
        let pool: Pool<u32> = Pool::new(8);
        let mut sim = Simulation::new();
        let (tx, rx) = pandora_sim::channel::<pandora_buffers::Descriptor>();
        {
            let pool = pool.clone();
            sim.spawn("producer", async move {
                for i in 0..5u32 {
                    let Ok(d) = pool.try_alloc(i) else { return };
                    if tx.send(d).await.is_err() {
                        return;
                    }
                }
            });
        }
        {
            let pool = pool.clone();
            sim.spawn("consumer", async move {
                let mut n = 0;
                while let Ok(d) = rx.recv().await {
                    n += 1;
                    if n == 3 {
                        // The bug under test: an early `continue` path
                        // that forgets to release its descriptor.
                        continue;
                    }
                    pool.release(d);
                }
            });
        }
        sim.run_until_idle();
        assert!(sim.deadlock_report().is_none());
        assert_eq!(pool.free_count(), 7, "exactly one descriptor leaked");
    }
    let report = take_leak_report().expect("leak audit must fire");
    assert_eq!(report.capacity, 8);
    assert_eq!(report.leaked.len(), 1, "leaked {:?}", report.leaked);
}
