//! Executor-level integration tests: scheduling semantics the whole
//! reproduction rests on.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use pandora_sim::{
    channel, delay, now, spawn, Priority, SimDuration, SimTime, Simulation, StopReason,
};

#[test]
fn run_until_stops_at_deadline_and_reports_reason() {
    let mut sim = Simulation::new();
    sim.spawn("ticker", async {
        loop {
            delay(SimDuration::from_millis(10)).await;
        }
    });
    assert_eq!(
        sim.run_until(SimTime::from_millis(35)),
        StopReason::Deadline
    );
    assert_eq!(sim.now(), SimTime::from_millis(35));
    // With no tasks pending anything, run_until_idle reports Idle.
    let mut sim2 = Simulation::new();
    sim2.spawn("oneshot", async {
        delay(SimDuration::from_millis(1)).await;
    });
    assert_eq!(sim2.run_until_idle(), StopReason::Idle);
    assert_eq!(sim2.live_tasks(), 0);
}

#[test]
fn high_priority_tasks_run_first_each_instant() {
    let mut sim = Simulation::new();
    let order = Rc::new(RefCell::new(Vec::new()));
    for i in 0..3 {
        let o = order.clone();
        sim.spawn(&format!("low{i}"), async move {
            o.borrow_mut().push(format!("low{i}"));
        });
    }
    for i in 0..3 {
        let o = order.clone();
        sim.spawn_prio(&format!("high{i}"), Priority::High, async move {
            o.borrow_mut().push(format!("high{i}"));
        });
    }
    sim.run_until_idle();
    let order = order.borrow();
    assert!(
        order[..3].iter().all(|s| s.starts_with("high")),
        "{order:?}"
    );
    assert!(order[3..].iter().all(|s| s.starts_with("low")), "{order:?}");
}

#[test]
fn tasks_can_spawn_tasks() {
    let mut sim = Simulation::new();
    let count = Rc::new(Cell::new(0u32));
    let c = count.clone();
    sim.spawn("root", async move {
        for i in 0..5 {
            let c = c.clone();
            spawn(&format!("child{i}"), async move {
                delay(SimDuration::from_millis(i as u64 + 1)).await;
                c.set(c.get() + 1);
            });
        }
    });
    sim.run_until_idle();
    assert_eq!(count.get(), 5);
    assert_eq!(sim.spawned_total(), 6);
}

#[test]
fn virtual_time_is_exact_across_many_timers() {
    let mut sim = Simulation::new();
    let log = Rc::new(RefCell::new(Vec::new()));
    for i in 1..=10u64 {
        let l = log.clone();
        sim.spawn(&format!("t{i}"), async move {
            delay(SimDuration::from_micros(i * 137)).await;
            l.borrow_mut().push((i, now().as_micros()));
        });
    }
    sim.run_until_idle();
    for &(i, at) in log.borrow().iter() {
        assert_eq!(at, i * 137, "timer {i} fired at {at}");
    }
}

#[test]
fn dump_tasks_reports_blocked_processes() {
    let mut sim = Simulation::new();
    let (_tx, rx) = channel::<u32>();
    sim.spawn("waiter", async move {
        let _ = rx.recv().await;
    });
    sim.run_until_idle();
    let tasks = sim.dump_tasks();
    assert_eq!(tasks.len(), 1);
    assert_eq!(tasks[0], ("waiter".to_string(), "blocked"));
}

#[test]
fn deterministic_context_switch_counts() {
    let run = || {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        sim.spawn("producer", async move {
            for i in 0..100 {
                delay(SimDuration::from_micros(50)).await;
                if tx.send(i).await.is_err() {
                    return;
                }
            }
        });
        sim.spawn("consumer", async move { while rx.recv().await.is_ok() {} });
        sim.run_until_idle();
        sim.context_switches()
    };
    assert_eq!(run(), run(), "context switches must be deterministic");
}

#[test]
fn zero_duration_delay_resumes_same_instant() {
    let mut sim = Simulation::new();
    let at = Rc::new(Cell::new(SimTime::ZERO));
    let a = at.clone();
    sim.spawn("z", async move {
        delay(SimDuration::from_millis(5)).await;
        delay(SimDuration::ZERO).await;
        a.set(now());
    });
    sim.run_until_idle();
    assert_eq!(at.get(), SimTime::from_millis(5));
}

// ---------------------------------------------------------------------
// Shard-boundary semantics (ISSUE 7 satellite): the sharded runtime's
// build-time contract and lookahead behaviour, exercised from outside
// the pandora-shard crate.
// ---------------------------------------------------------------------

#[test]
fn zero_latency_cross_shard_link_is_rejected_at_build_time() {
    use pandora_shard::Cluster;
    // Rejected while *wiring*, not at run time: the link latency is the
    // conservative-lookahead window, and a zero window cannot guarantee
    // progress.
    let err = std::panic::catch_unwind(|| {
        let mut cluster = Cluster::new(2);
        let _ = cluster.port::<u32>(0, 1, SimDuration::ZERO, "bad");
    })
    .expect_err("zero-latency cross-shard port must be refused");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("zero-latency cross-shard link rejected"),
        "unexpected panic message: {msg}"
    );
    // Loopback ports may be instantaneous — they never gate lookahead.
    let mut cluster = Cluster::new(2);
    let _ = cluster.port::<u32>(1, 1, SimDuration::ZERO, "loop");
}

#[test]
fn lookahead_stalls_at_the_horizon_and_releases_when_the_peer_idles() {
    use pandora_shard::Cluster;
    let run = || {
        let mut cluster = Cluster::new(2);
        let (egress, ingress) = cluster.port::<u64>(1, 0, SimDuration::from_millis(1), "x");
        cluster.setup(1, move |env| {
            // One late message, then idle: shard 0 must neither see the
            // value early (stall side) nor be wedged behind an idle
            // peer (release side).
            let (tx, rx) = pandora_sim::unbounded::<u64>();
            env.bind_egress(egress, rx);
            env.spawner().spawn("sender", async move {
                delay(SimDuration::from_millis(7)).await;
                let _ = tx.try_send(now().as_millis());
            });
        });
        cluster.setup(0, move |env| {
            let rx = env.bind_ingress(ingress);
            let seen = Rc::new(RefCell::new(Vec::new()));
            let ticks = Rc::new(Cell::new(0u32));
            let (s, t) = (seen.clone(), ticks.clone());
            env.spawner().spawn("receiver", async move {
                while let Ok(sent) = rx.recv().await {
                    s.borrow_mut().push((sent, now().as_millis()));
                }
            });
            env.spawner().spawn("ticker", async move {
                loop {
                    delay(SimDuration::from_millis(1)).await;
                    t.set(t.get() + 1);
                }
            });
            env.on_finish(move || vec![format!("seen={:?} ticks={}", seen.borrow(), ticks.get())]);
        });
        cluster.run(SimTime::from_millis(20)).merged_lines()
    };
    let lines = run();
    // Sent at 7 ms, link latency 1 ms: delivered at exactly 8 ms — the
    // receiver's clock never outran the sender's horizon plus lookahead.
    // And the ticker reached the full 20 ms deadline even though the
    // sending shard went idle at 7 ms: idle shards keep publishing
    // horizons, so the lookahead gate releases instead of deadlocking.
    assert_eq!(lines, vec!["seen=[(7, 8)] ticks=20".to_string()]);
    assert_eq!(
        run(),
        lines,
        "shard-boundary schedule must be deterministic"
    );
}
