//! Executor-level integration tests: scheduling semantics the whole
//! reproduction rests on.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use pandora_sim::{
    channel, delay, now, spawn, Priority, SimDuration, SimTime, Simulation, StopReason,
};

#[test]
fn run_until_stops_at_deadline_and_reports_reason() {
    let mut sim = Simulation::new();
    sim.spawn("ticker", async {
        loop {
            delay(SimDuration::from_millis(10)).await;
        }
    });
    assert_eq!(
        sim.run_until(SimTime::from_millis(35)),
        StopReason::Deadline
    );
    assert_eq!(sim.now(), SimTime::from_millis(35));
    // With no tasks pending anything, run_until_idle reports Idle.
    let mut sim2 = Simulation::new();
    sim2.spawn("oneshot", async {
        delay(SimDuration::from_millis(1)).await;
    });
    assert_eq!(sim2.run_until_idle(), StopReason::Idle);
    assert_eq!(sim2.live_tasks(), 0);
}

#[test]
fn high_priority_tasks_run_first_each_instant() {
    let mut sim = Simulation::new();
    let order = Rc::new(RefCell::new(Vec::new()));
    for i in 0..3 {
        let o = order.clone();
        sim.spawn(&format!("low{i}"), async move {
            o.borrow_mut().push(format!("low{i}"));
        });
    }
    for i in 0..3 {
        let o = order.clone();
        sim.spawn_prio(&format!("high{i}"), Priority::High, async move {
            o.borrow_mut().push(format!("high{i}"));
        });
    }
    sim.run_until_idle();
    let order = order.borrow();
    assert!(
        order[..3].iter().all(|s| s.starts_with("high")),
        "{order:?}"
    );
    assert!(order[3..].iter().all(|s| s.starts_with("low")), "{order:?}");
}

#[test]
fn tasks_can_spawn_tasks() {
    let mut sim = Simulation::new();
    let count = Rc::new(Cell::new(0u32));
    let c = count.clone();
    sim.spawn("root", async move {
        for i in 0..5 {
            let c = c.clone();
            spawn(&format!("child{i}"), async move {
                delay(SimDuration::from_millis(i as u64 + 1)).await;
                c.set(c.get() + 1);
            });
        }
    });
    sim.run_until_idle();
    assert_eq!(count.get(), 5);
    assert_eq!(sim.spawned_total(), 6);
}

#[test]
fn virtual_time_is_exact_across_many_timers() {
    let mut sim = Simulation::new();
    let log = Rc::new(RefCell::new(Vec::new()));
    for i in 1..=10u64 {
        let l = log.clone();
        sim.spawn(&format!("t{i}"), async move {
            delay(SimDuration::from_micros(i * 137)).await;
            l.borrow_mut().push((i, now().as_micros()));
        });
    }
    sim.run_until_idle();
    for &(i, at) in log.borrow().iter() {
        assert_eq!(at, i * 137, "timer {i} fired at {at}");
    }
}

#[test]
fn dump_tasks_reports_blocked_processes() {
    let mut sim = Simulation::new();
    let (_tx, rx) = channel::<u32>();
    sim.spawn("waiter", async move {
        let _ = rx.recv().await;
    });
    sim.run_until_idle();
    let tasks = sim.dump_tasks();
    assert_eq!(tasks.len(), 1);
    assert_eq!(tasks[0], ("waiter".to_string(), "blocked"));
}

#[test]
fn deterministic_context_switch_counts() {
    let run = || {
        let mut sim = Simulation::new();
        let (tx, rx) = channel::<u32>();
        sim.spawn("producer", async move {
            for i in 0..100 {
                delay(SimDuration::from_micros(50)).await;
                if tx.send(i).await.is_err() {
                    return;
                }
            }
        });
        sim.spawn("consumer", async move { while rx.recv().await.is_ok() {} });
        sim.run_until_idle();
        sim.context_switches()
    };
    assert_eq!(run(), run(), "context switches must be deterministic");
}

#[test]
fn zero_duration_delay_resumes_same_instant() {
    let mut sim = Simulation::new();
    let at = Rc::new(Cell::new(SimTime::ZERO));
    let a = at.clone();
    sim.spawn("z", async move {
        delay(SimDuration::from_millis(5)).await;
        delay(SimDuration::ZERO).await;
        a.set(now());
    });
    sim.run_until_idle();
    assert_eq!(at.get(), SimTime::from_millis(5));
}
