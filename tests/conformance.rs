//! Fault-injection conformance suite (ISSUE 2).
//!
//! Each paper principle is exercised under an *injected fault* in two
//! paired runs: the standard configuration, and an ablated one with the
//! mechanism disabled. The suite asserts the principle holds in the
//! first AND visibly fails in the second — so every mechanism is shown
//! to be load-bearing, not decorative. A final pair of tests asserts the
//! determinism contract (same seed ⇒ byte-identical trace and metrics)
//! and sweeps seeded random fault schedules through the videophone and
//! conference topologies checking global invariants.

mod support;

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig, BoxPair, TxMode};
use pandora_atm::HopConfig;
use pandora_audio::gen::Tone;
use pandora_buffers::ReportClass;
use pandora_faults::{install, FaultKind, FaultPlan, FaultTargets, RandomProfile};
use pandora_sim::{SimDuration, SimTime, Simulation};

fn tone() -> Box<Tone> {
    Box::new(Tone::new(440.0, 8_000.0))
}

fn pair_with(
    sim: &Simulation,
    cfg_a: BoxConfig,
    cfg_b: BoxConfig,
    link_bps: u64,
    seed: u64,
) -> (BoxPair, FaultTargets) {
    let pair = connect_pair(
        &sim.spawner(),
        cfg_a,
        cfg_b,
        &[HopConfig::clean(link_bps)],
        seed,
    );
    let targets = support::pair_targets(&pair);
    (pair, targets)
}

// --- P1: output before input (PRIO_OUTPUT on the mix tick) -------------

/// Audio shout into box B while rogue CPU load saturates B's audio
/// transputer for 2 s. Returns (late mix ticks, trace entries).
fn p1_run(output_priority: bool) -> (u64, usize) {
    let mut sim = Simulation::new();
    let mut cfg_b = BoxConfig::standard("boxb");
    cfg_b.output_priority = output_priority;
    let (pair, targets) = pair_with(&sim, BoxConfig::standard("boxa"), cfg_b, 50_000_000, 11);
    open_audio_shout(&pair.a, &pair.b, tone());
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(1),
        Some(SimDuration::from_secs(2)),
        FaultKind::CpuLoad {
            cpu: "boxb.audio".into(),
            claimants: 4,
            cost: SimDuration::from_micros(1_000),
        },
    );
    let trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(4));
    (pair.b.speaker.late_ticks(), trace.len())
}

#[test]
fn p1_output_priority_survives_cpu_storm() {
    let (late, trace_len) = p1_run(true);
    assert!(trace_len >= 2, "fault not applied+reverted: {trace_len}");
    assert_eq!(late, 0, "mix ran late under load despite PRIO_OUTPUT");
}

#[test]
fn p1_disabled_mix_starves_under_cpu_storm() {
    let (late, _) = p1_run(false);
    assert!(late > 10, "ablated mix should starve, late ticks = {late}");
}

// --- P2: audio over video at the network scheduler ---------------------

/// Audio + video share one path whose bandwidth collapses to 1.5% for
/// 3 s. Returns (audio segments received at B, video drops at A).
fn p2_run(audio_priority: bool) -> (u64, u64) {
    let mut sim = Simulation::new();
    let mut cfg_a = BoxConfig::standard("boxa");
    // Interleaved in both variants so large staged video segments cannot
    // hold audio cells hostage regardless of the knob under test.
    cfg_a.tx_mode = TxMode::Interleaved;
    cfg_a.audio_priority = audio_priority;
    let mut cfg_b = BoxConfig::standard("boxb");
    cfg_b.tx_mode = TxMode::Interleaved;
    let (pair, targets) = pair_with(&sim, cfg_a, cfg_b, 20_000_000, 22);
    open_audio_shout(&pair.a, &pair.b, tone());
    open_video_stream(&pair.a, &pair.b, support::video_cfg());
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(1),
        Some(SimDuration::from_secs(3)),
        FaultKind::BandwidthCollapse {
            path: "a-b".into(),
            hop: 0,
            permille: 15,
        },
    );
    let _trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(5));
    (
        pair.b.speaker.segments_received(),
        pair.a.net_out_stats.p3_drops_total(),
    )
}

#[test]
fn p2_audio_rides_through_bandwidth_collapse() {
    let (audio, video_drops) = p2_run(true);
    // 300 kbit/s remaining fits the whole audio stream; video backlogs
    // and is shed instead.
    assert!(audio > 1_000, "audio starved with P2 on: {audio}");
    assert!(video_drops > 0, "collapse never backlogged video");
}

#[test]
fn p2_disabled_audio_starves_behind_video() {
    let (audio_off, _) = p2_run(false);
    let (audio_on, _) = p2_run(true);
    assert!(
        audio_off + 200 < audio_on,
        "ablation did not starve audio: {audio_off} vs {audio_on}"
    );
}

// --- P3: degrade the longest-open stream first --------------------------

/// Two video streams, the second opened 1 s later; bandwidth collapses
/// while both run. Returns (drops on old stream, drops on new stream).
fn p3_run(oldest_first: bool) -> (u64, u64) {
    let mut sim = Simulation::new();
    let mut cfg_a = BoxConfig::standard("boxa");
    cfg_a.p3_oldest_first = oldest_first;
    let (pair, targets) = pair_with(&sim, cfg_a, BoxConfig::standard("boxb"), 20_000_000, 33);
    let (old_src, _, _h1) = open_video_stream(&pair.a, &pair.b, support::video_cfg());
    // The second stream must record a later opened_at, so open it at a
    // paused virtual time instead of during setup.
    sim.run_until(SimTime::from_secs(1));
    let (new_src, _, _h2) = open_video_stream(&pair.a, &pair.b, support::video_cfg());
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(1),
        Some(SimDuration::from_millis(2_500)),
        FaultKind::BandwidthCollapse {
            path: "a-b".into(),
            hop: 0,
            permille: 15,
        },
    );
    let _trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(5));
    (
        pair.a.net_out_stats.p3_drops(old_src),
        pair.a.net_out_stats.p3_drops(new_src),
    )
}

#[test]
fn p3_oldest_stream_degrades_first() {
    let (old, new) = p3_run(true);
    assert!(old > 0, "no P3 drops despite collapse");
    assert!(
        old > new,
        "newest stream degraded first: old {old}, new {new}"
    );
}

#[test]
fn p3_disabled_newest_stream_degrades_instead() {
    let (old, new) = p3_run(false);
    assert!(new > 0, "no drops in ablated run");
    assert!(
        new > old,
        "ablation still shed oldest: old {old}, new {new}"
    );
}

// --- P4: commands ahead of data (PRI ALT in the switch) -----------------

/// Duplex audio keeps A's switch input continuously ready while rogue
/// load slows its server CPU; a stream query is issued mid-storm.
/// Returns (query answered during the storm, answered by the end).
fn p4_run(command_priority: bool) -> (bool, bool) {
    let mut sim = Simulation::new();
    let mut cfg_a = BoxConfig::standard("boxa");
    cfg_a.command_priority = command_priority;
    let (pair, targets) = pair_with(&sim, cfg_a, BoxConfig::standard("boxb"), 50_000_000, 44);
    let (src, _) = open_audio_shout(&pair.a, &pair.b, tone());
    open_audio_shout(&pair.b, &pair.a, tone());
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(1),
        Some(SimDuration::from_secs(3)),
        FaultKind::CpuLoad {
            cpu: "boxa.server".into(),
            claimants: 4,
            cost: SimDuration::from_micros(1_000),
        },
    );
    let _trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(2));
    pair.a.query_stream(src);
    sim.run_until(SimTime::from_millis(3_500));
    let during = !pair.a.log.of_class(ReportClass::Info).is_empty();
    sim.run_until(SimTime::from_secs(6));
    let eventually = !pair.a.log.of_class(ReportClass::Info).is_empty();
    (during, eventually)
}

#[test]
fn p4_commands_answered_during_cpu_storm() {
    let (during, _) = p4_run(true);
    assert!(during, "query starved despite command priority");
}

#[test]
fn p4_disabled_commands_starve_behind_data() {
    let (during, eventually) = p4_run(false);
    assert!(!during, "ablated switch still answered mid-storm");
    assert!(eventually, "query lost outright, not merely starved");
}

// --- P5: drops land at the decoupling buffers, not upstream -------------

/// Audio + video into B while B's mixer output handler is paused for
/// 3 s. Returns (audio segments received at B just before the handler
/// resumes, final audio segments received, switch drops at B). The
/// mid-stall snapshot is the discriminator: blocking gates stall the
/// whole switch, which *delays* rather than drops audio, so by the end
/// of the run the totals converge again.
fn p5_run(ready_mode: bool) -> (u64, u64, u64) {
    let mut sim = Simulation::new();
    let mut cfg_b = BoxConfig::standard("boxb");
    cfg_b.ready_mode = ready_mode;
    let (pair, targets) = pair_with(&sim, BoxConfig::standard("boxa"), cfg_b, 50_000_000, 55);
    open_audio_shout(&pair.a, &pair.b, tone());
    open_video_stream(&pair.a, &pair.b, support::video_cfg());
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(1),
        Some(SimDuration::from_secs(3)),
        FaultKind::PauseTasks {
            prefix: "boxb:mixer-out-handler".into(),
        },
    );
    let _trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_millis(3_900));
    let mid = pair.b.speaker.segments_received();
    sim.run_until(SimTime::from_secs(6));
    (
        mid,
        pair.b.speaker.segments_received(),
        pair.b.switch_stats.dropped_total(),
    )
}

#[test]
fn p5_stalled_consumer_loses_only_its_own_stream() {
    let (mid, audio, sw_drops) = p5_run(true);
    assert!(
        sw_drops > 0,
        "paused mixer never overflowed its ready-mode gate"
    );
    assert!(mid > 900, "audio stalled mid-fault with P5 on: {mid}");
    assert!(audio > 1_200, "audio suffered from a video stall: {audio}");
}

#[test]
fn p5_disabled_stall_propagates_to_all_streams() {
    let (mid_off, final_off, _) = p5_run(false);
    let (mid_on, _, _) = p5_run(true);
    assert!(
        mid_off + 200 < mid_on,
        "blocking gates did not back up the switch: {mid_off} vs {mid_on}"
    );
    // The stall defers audio rather than dropping it: playout resumes
    // once the mixer handler does.
    assert!(final_off > mid_off, "audio never recovered after resume");
}

// --- Clawback recovery (§3.7.2) -----------------------------------------

/// A 16 ms latency step is applied and reverted; the reversion flushes
/// the in-flight queue into B's playout buffer in one burst. Returns
/// (peak delay ms, final delay ms) of the monitored stream.
fn clawback_run(enabled: bool) -> (f64, f64) {
    let mut sim = Simulation::new();
    let mut cfg_b = BoxConfig::standard("boxb");
    if !enabled {
        // Never claw back: the adaptation threshold is unreachable.
        cfg_b.clawback.count_threshold = u64::MAX;
    }
    let (pair, targets) = pair_with(&sim, BoxConfig::standard("boxa"), cfg_b, 50_000_000, 66);
    open_audio_shout(&pair.a, &pair.b, tone());
    let plan = FaultPlan::default().event(
        SimDuration::from_secs(3),
        Some(SimDuration::from_secs(3)),
        FaultKind::LatencyStep {
            path: "a-b".into(),
            extra: SimDuration::from_millis(16),
        },
    );
    let _trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(90));
    let series = pair.b.speaker.delay_series();
    let peak = series
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    let last = series.last_value().unwrap_or(0.0);
    (peak / 1e6, last / 1e6)
}

#[test]
fn clawback_recovers_from_latency_step() {
    let (peak, last) = clawback_run(true);
    assert!(
        peak > 12.0,
        "latency step never inflated the buffer: {peak}ms"
    );
    // One block per 8.192 s reclaims the ~8-block burst well inside the
    // 84 s tail; the buffer is back near its 4 ms target.
    assert!(last < 8.0, "clawback failed to reclaim the burst: {last}ms");
}

#[test]
fn clawback_disabled_buffer_stays_inflated() {
    let (peak, last) = clawback_run(false);
    assert!(peak > 12.0, "fault had no effect: {peak}ms");
    assert!(last > 12.0, "buffer shrank without clawback: {last}ms");
}

// --- Determinism: same seed ⇒ byte-identical trace and metrics ----------

fn videophone_profile(horizon: SimDuration, events: usize) -> RandomProfile {
    let mut p = RandomProfile::new(horizon, events);
    p.paths = vec!["a-b".into(), "b-a".into()];
    p.pause_prefixes = vec![
        "boxa:mixer-out-handler".into(),
        "boxb:mixer-out-handler".into(),
    ];
    p
}

fn deterministic_run(seed: u64) -> (String, String) {
    let mut sim = Simulation::new();
    let (pair, targets) = pair_with(
        &sim,
        BoxConfig::standard("boxa"),
        BoxConfig::standard("boxb"),
        20_000_000,
        5,
    );
    open_audio_shout(&pair.a, &pair.b, tone());
    open_video_stream(&pair.a, &pair.b, support::video_cfg());
    let plan = FaultPlan::random(seed, &videophone_profile(SimDuration::from_secs(8), 4));
    let trace = install(&sim.spawner(), &plan, &targets);
    sim.run_until(SimTime::from_secs(10));
    (trace.to_text(), support::snapshot(&pair))
}

#[test]
fn same_seed_replays_byte_identically() {
    let (trace_1, snap_1) = deterministic_run(1234);
    let (trace_2, snap_2) = deterministic_run(1234);
    assert!(!trace_1.is_empty(), "seeded plan injected nothing");
    assert_eq!(trace_1, trace_2, "fault trace diverged between replays");
    assert_eq!(
        snap_1, snap_2,
        "conformance metrics diverged between replays"
    );
    let (trace_3, _) = deterministic_run(4321);
    assert_ne!(trace_1, trace_3, "different seeds produced the same trace");
}

// --- Seeded sweeps -------------------------------------------------------

/// Global invariants every faulted run must satisfy once the fault
/// schedule's recovery tail has elapsed.
fn assert_invariants(pair: &BoxPair, audio_floor: u64, ctx: &str) {
    for (label, b) in [("a", &pair.a), ("b", &pair.b)] {
        assert_eq!(
            b.net_in_stats.pool_exhausted(),
            0,
            "{ctx}: pool exhausted on {label}"
        );
        assert!(
            b.pool.free_count() > b.pool.capacity() - 16,
            "{ctx}: pool leak on {label}: {} of {} free",
            b.pool.free_count(),
            b.pool.capacity()
        );
    }
    assert!(
        pair.b.speaker.segments_received() > audio_floor,
        "{ctx}: audio collapsed: {}",
        pair.b.speaker.segments_received()
    );
}

#[test]
fn videophone_fault_sweep_holds_invariants() {
    for seed in 1..=8u64 {
        let mut sim = Simulation::new();
        let (pair, targets) = pair_with(
            &sim,
            BoxConfig::standard("boxa"),
            BoxConfig::standard("boxb"),
            20_000_000,
            seed,
        );
        open_audio_shout(&pair.a, &pair.b, tone());
        open_audio_shout(&pair.b, &pair.a, tone());
        open_video_stream(&pair.a, &pair.b, support::video_cfg());
        let plan = FaultPlan::random(seed, &videophone_profile(SimDuration::from_secs(9), 5));
        let trace = install(&sim.spawner(), &plan, &targets);
        sim.run_until(SimTime::from_secs(12));
        assert!(!trace.is_empty(), "seed {seed}: nothing injected");
        assert_invariants(&pair, 1_200, &format!("videophone seed {seed}"));
    }
}

#[test]
fn conference_fault_sweep_holds_invariants() {
    // A two-party conference: duplex audio, duplex video, and a second
    // audio stream a→b (a shared-room feed) through the same switch.
    for seed in [100u64, 101] {
        let mut sim = Simulation::new();
        let (pair, targets) = pair_with(
            &sim,
            BoxConfig::standard("boxa"),
            BoxConfig::standard("boxb"),
            20_000_000,
            seed,
        );
        open_audio_shout(&pair.a, &pair.b, tone());
        open_audio_shout(&pair.b, &pair.a, tone());
        open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(330.0, 6_000.0)));
        open_video_stream(&pair.a, &pair.b, support::video_cfg());
        open_video_stream(&pair.b, &pair.a, support::video_cfg());
        let plan = FaultPlan::random(seed, &videophone_profile(SimDuration::from_secs(9), 5));
        let trace = install(&sim.spawner(), &plan, &targets);
        sim.run_until(SimTime::from_secs(12));
        assert!(!trace.is_empty(), "seed {seed}: nothing injected");
        assert_invariants(&pair, 1_200, &format!("conference seed {seed}"));
    }
}
