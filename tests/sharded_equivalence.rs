//! Cross-executor equivalence suite (ISSUE 7): the sharded parallel
//! executor must be *observationally invisible*. Every scenario here is
//! built once over a `pandora-shard` [`Cluster`] and run at shard counts
//! {1, 2, 4, 8}; the single-shard run — which spawns no OS threads and
//! is exactly today's single-threaded executor — is the baseline, and
//! every other shard count must reproduce its trace byte for byte:
//! box counters, controller digests, recovery timelines and fault
//! traces alike.
//!
//! Placement is always by contiguous index ranges (`i * shards / n`),
//! which is monotonic — so `RunReport::merged_lines` (shard order, then
//! registration order) yields the same line sequence for every shard
//! count and traces can be compared directly, not as sorted sets.

use std::cell::Cell as StdCell;
use std::rc::Rc;

use pandora::{BoxConfig, OutputId, PandoraBox, StreamKind};
use pandora_atm::{HopConfig, Vci};
use pandora_audio::gen::{Speech, Tone};
use pandora_faults::{install_scoped, FaultKind, FaultPlan, FaultTargets, RandomProfile};
use pandora_segment::StreamId;
use pandora_session::{
    build_sharded_pair, build_sharded_star, ControllerConfig, LeaseConfig, NodeHook, NodeSeat,
    ShardedPairConfig, ShardedStarConfig, StreamClass,
};
use pandora_shard::{Cluster, ShardEnv};
use pandora_sim::{SimDuration, SimTime};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The conformance suite's small videophone capture window.
fn video_cfg() -> CaptureConfig {
    CaptureConfig {
        rect: Rect::new(16, 16, 128, 96),
        rate: RateFraction::new(2, 5),
        lines_per_segment: 32,
        mode: LineMode::Dpcm,
    }
}

/// Deterministic one-line metric snapshot of a box — integer counters
/// only, same fields as the fault-conformance suite's snapshot.
fn box_snapshot(label: &str, b: &PandoraBox) -> String {
    format!(
        "{label}: fwd={} sw_drop={} no_route={} p3={} tx_audio={} tx_video={} cells={} \
         rx_seg={} rx_discard={} rx_decode_err={} pool_exh={} \
         spk_recv={} spk_lost={} spk_late={} concealed={} disp_frames={}",
        b.switch_stats.forwarded(),
        b.switch_stats.dropped_total(),
        b.switch_stats.no_route(),
        b.net_out_stats.p3_drops_total(),
        b.net_out_stats.audio_segments(),
        b.net_out_stats.video_segments(),
        b.net_out_stats.cells(),
        b.net_in_stats.segments(),
        b.net_in_stats.frames_discarded(),
        b.net_in_stats.decode_errors(),
        b.net_in_stats.pool_exhausted(),
        b.speaker.segments_received(),
        b.speaker.segments_lost(),
        b.speaker.late_ticks(),
        b.speaker.concealed(),
        b.display.frames_shown(),
    )
}

// ---------------------------------------------------------------------
// Scenario 1a: videophone — audio + video shout a → b over a sharded
// pair.
// ---------------------------------------------------------------------

fn run_videophone(shards: usize) -> Vec<String> {
    let mut cluster = Cluster::new(shards);
    build_sharded_pair(
        &mut cluster,
        ShardedPairConfig {
            hops: vec![HopConfig::clean(50_000_000)],
            seed: 7,
            box_config: BoxConfig::standard,
            link_latency: SimDuration::from_micros(20),
        },
        shards - 1,
        |env, seat| {
            // Source side: routes toward b are installed at t = 0, once
            // the blackboard carries b's allocated stream ids.
            let boxy = seat.boxy.clone();
            let bb = env.blackboard().clone();
            env.spawner().spawn("call:src", async move {
                let audio_dst: StreamId = bb.expect("pair.audio_dst");
                let video_dst: StreamId = bb.expect("pair.video_dst");
                let mic = boxy.start_audio_source(Box::new(Tone::new(440.0, 8_000.0)));
                boxy.set_route(
                    mic,
                    StreamKind::Audio,
                    vec![OutputId::Network(Vci::from_stream(audio_dst))],
                );
                let (cam, _handle) = boxy.start_video_capture(video_cfg());
                boxy.set_route(
                    cam,
                    StreamKind::Video,
                    vec![OutputId::Network(Vci::from_stream(video_dst))],
                );
            });
            let boxy = seat.boxy.clone();
            env.on_finish(move || vec![box_snapshot("a", &boxy)]);
        },
        |env, seat| {
            // Sink side: allocate the arriving streams during setup and
            // publish their ids for the source's t = 0 task.
            let audio = seat.boxy.alloc_stream();
            seat.boxy
                .set_route(audio, StreamKind::Audio, vec![OutputId::Audio]);
            let video = seat.boxy.alloc_stream();
            seat.boxy
                .set_route(video, StreamKind::Video, vec![OutputId::Mixer]);
            env.blackboard().put("pair.audio_dst", audio);
            env.blackboard().put("pair.video_dst", video);
            let boxy = seat.boxy.clone();
            env.on_finish(move || vec![box_snapshot("b", &boxy)]);
        },
    );
    cluster.run(SimTime::from_secs(2)).merged_lines()
}

#[test]
fn videophone_trace_is_identical_across_shard_counts() {
    let baseline = run_videophone(1);
    let b_line = baseline
        .iter()
        .find(|l| l.starts_with("b:"))
        .expect("sink snapshot");
    assert!(
        !b_line.contains("spk_recv=0"),
        "no audio reached b: {b_line}"
    );
    assert!(
        !b_line.contains("disp_frames=0"),
        "no video reached b: {b_line}"
    );
    for shards in &SHARD_COUNTS[1..] {
        assert_eq!(
            run_videophone(*shards),
            baseline,
            "{shards} shards diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Scenario 1b + 1c + 2: conferences over a sharded star — plain,
// crash-reconvergence, and the seeded fault sweep — share one harness.
// ---------------------------------------------------------------------

/// What adversity a conference run faces.
#[derive(Clone, Copy)]
enum Adversity {
    /// No faults at all.
    None,
    /// The ISSUE-5 crash: node3 dies at 2 s, restarts at 6.5 s, and the
    /// driver re-admits it after the lease settles.
    CrashReconverge,
    /// A seeded random plan (loss, corruption, latency, link flaps on
    /// every attachment path) plus a node3 crash/restart.
    Sweep(u64),
}

/// The fault plan every installer derives independently; scoping picks
/// each shard's slice. Must be a pure function of the scenario so all
/// shards agree on it.
fn conference_plan(adversity: Adversity, boxes: usize) -> Option<FaultPlan> {
    match adversity {
        Adversity::None => None,
        Adversity::CrashReconverge => Some(FaultPlan::default().crash_restart(
            "node3",
            SimDuration::from_secs(2),
            SimDuration::from_millis(4_500),
        )),
        Adversity::Sweep(seed) => {
            let mut profile = RandomProfile::new(SimDuration::from_secs(8), 10);
            for i in 0..boxes {
                profile.paths.push(format!("node{i}.ab"));
                profile.paths.push(format!("node{i}.ba"));
            }
            Some(FaultPlan::random(seed, &profile).crash_restart(
                "node3",
                SimDuration::from_millis(4_200),
                SimDuration::from_millis(2_300),
            ))
        }
    }
}

/// Installs the scenario's plan on the current shard, scoped to the
/// targets owned by attachment `name` (its two path directions and its
/// box-name faults), and reports the scoped trace at finish.
fn install_for(
    env: &mut ShardEnv,
    seat_name: &'static str,
    path_controls: &[(String, pandora_atm::PathControl)],
    plan: &FaultPlan,
) {
    let mut targets = FaultTargets::new();
    for (name, ctrl) in path_controls {
        targets.register_path(name, ctrl.clone());
    }
    let trace = install_scoped(env.spawner(), plan, &targets, move |kind: &FaultKind| {
        let t = kind.target_name();
        t == seat_name
            || t.strip_prefix(seat_name)
                .is_some_and(|rest| rest == ".ab" || rest == ".ba")
    });
    env.on_finish(move || trace.to_text().lines().map(String::from).collect());
}

fn run_conference(shards: usize, boxes: usize, adversity: Adversity) -> Vec<String> {
    assert!(boxes >= 6, "need a source, fan-out, node3 and its listener");
    let lease = matches!(adversity, Adversity::CrashReconverge | Adversity::Sweep(_));
    let mut cluster = Cluster::new(shards);
    let place = move |i: usize| i * shards / boxes;

    let node_hooks: Vec<NodeHook> = (0..boxes)
        .map(|i| {
            let hook = move |env: &mut ShardEnv, seat: &NodeSeat| {
                // Sources: node0 fans out to the conference, node3 runs
                // its own stream to the last box (so its crash leaves
                // both a sink and a source to clean up).
                if i == 0 || i == 3 {
                    let mic = seat
                        .boxy
                        .start_audio_source(Box::new(Speech::new(if i == 0 { 1 } else { 2 })));
                    env.blackboard().put(&format!("mic{i}"), mic);
                }
                if let Some(plan) = conference_plan(adversity, boxes) {
                    install_for(env, seat.name, &seat.path_controls, &plan);
                }
                let boxy = seat.boxy.clone();
                let agent = seat.agent.clone();
                let name = seat.name;
                env.on_finish(move || {
                    vec![format!(
                        "{name} {} handled={} sinks={}",
                        box_snapshot("box", &boxy),
                        agent.handled(),
                        agent.active_sinks(),
                    )]
                });
            };
            Box::new(hook) as NodeHook
        })
        .collect();

    build_sharded_star(
        &mut cluster,
        boxes,
        ShardedStarConfig {
            seed: 0xFA11,
            controller: ControllerConfig {
                lease: lease.then(|| LeaseConfig {
                    interval: SimDuration::from_millis(100),
                    ..LeaseConfig::default()
                }),
                ..ControllerConfig::default()
            },
            link_latency: SimDuration::from_micros(50),
            ..Default::default()
        },
        place,
        move |env, hub| {
            let controller = hub.controller.clone();
            let switch = hub.switch.clone();
            let endpoints = hub.endpoints.clone();
            let bb = env.blackboard().clone();
            let done = Rc::new(StdCell::new(false));
            let routes_after = Rc::new(StdCell::new(usize::MAX));
            let debt_dead = Rc::new(StdCell::new(usize::MAX));
            let debt_rejoin = Rc::new(StdCell::new(usize::MAX));
            let readmitted = Rc::new(StdCell::new(0u32));
            let (d, ra, dd, dr, rr) = (
                done.clone(),
                routes_after.clone(),
                debt_dead.clone(),
                debt_rejoin.clone(),
                readmitted.clone(),
            );
            let wait_for_rejoin = matches!(adversity, Adversity::CrashReconverge);
            env.spawner().spawn("driver", async move {
                let mic0: StreamId = bb.expect("mic0");
                let mic3: StreamId = bb.expect("mic3");
                let s0 = controller
                    .open(endpoints[0], mic0, StreamClass::Audio)
                    .unwrap();
                let s3 = controller
                    .open(endpoints[3], mic3, StreamClass::Audio)
                    .unwrap();
                let fanout = endpoints.len().min(8);
                for &dst in &endpoints[1..fanout] {
                    controller.add_listener(s0, dst).await.unwrap();
                }
                controller
                    .add_listener(s3, *endpoints.last().expect("nonempty"))
                    .await
                    .unwrap();
                if wait_for_rejoin {
                    while controller.crashes() == 0 {
                        pandora_sim::delay(SimDuration::from_millis(50)).await;
                    }
                    ra.set(switch.port_route_count(3));
                    dd.set(controller.stale_debt(endpoints[3]));
                    while controller.rejoins() == 0 {
                        pandora_sim::delay(SimDuration::from_millis(100)).await;
                    }
                    dr.set(controller.stale_debt(endpoints[3]));
                    let admitted = controller.add_listener(s0, endpoints[3]).await.unwrap();
                    rr.set(admitted.rate_permille);
                }
                d.set(true);
            });
            let controller = hub.controller.clone();
            if let Some(plan) = conference_plan(adversity, boxes) {
                install_for(env, "controller", &hub.path_controls, &plan);
            }
            env.on_finish(move || {
                vec![
                    format!(
                        "hub done={} crashes={} rejoins={} routes_after={} debt_dead={} \
                         debt_rejoin={} readmit={}",
                        done.get(),
                        controller.crashes(),
                        controller.rejoins(),
                        routes_after.get(),
                        debt_dead.get(),
                        debt_rejoin.get(),
                        readmitted.get(),
                    ),
                    format!("digest {}", controller.digest()),
                    format!("recovery {}", controller.recovery_digest()),
                    format!("leases {}", controller.lease_digest()),
                    format!("timeline {:?}", controller.recovery_timeline()),
                ]
            });
        },
        node_hooks,
    );

    let horizon = match adversity {
        Adversity::None => SimTime::from_secs(5),
        Adversity::CrashReconverge => SimTime::from_secs(12),
        Adversity::Sweep(_) => SimTime::from_secs(9),
    };
    cluster.run(horizon).merged_lines()
}

#[test]
fn conference_trace_is_identical_across_shard_counts() {
    let baseline = run_conference(1, 6, Adversity::None);
    assert!(
        baseline[0].starts_with("hub done=true"),
        "driver never finished: {}",
        baseline[0]
    );
    for shards in &SHARD_COUNTS[1..] {
        assert_eq!(
            run_conference(*shards, 6, Adversity::None),
            baseline,
            "{shards} shards diverged"
        );
    }
}

#[test]
fn crash_reconvergence_trace_is_identical_across_shard_counts() {
    let baseline = run_conference(1, 6, Adversity::CrashReconverge);
    assert!(
        baseline[0].starts_with("hub done=true crashes=1 rejoins=1"),
        "crash scenario did not complete: {}",
        baseline[0]
    );
    assert!(
        baseline.iter().any(|l| l.contains("box-crash name=node3")),
        "fault trace missing the crash"
    );
    for shards in &SHARD_COUNTS[1..] {
        assert_eq!(
            run_conference(*shards, 6, Adversity::CrashReconverge),
            baseline,
            "{shards} shards diverged"
        );
    }
}

/// Satellite 2: ten seeds, each with injected loss/flap faults plus a
/// crash/restart, each replayed at one and four shards — every pair
/// byte-identical.
#[test]
fn seed_sweep_with_faults_replays_identically_at_four_shards() {
    for seed in 0..10u64 {
        let single = run_conference(1, 6, Adversity::Sweep(seed));
        let sharded = run_conference(4, 6, Adversity::Sweep(seed));
        assert_eq!(single, sharded, "seed {seed} diverged");
        assert!(
            single.iter().any(|l| l.contains("box-crash name=node3")),
            "seed {seed}: crash missing from trace"
        );
    }
}

// ---------------------------------------------------------------------
// Tentpole acceptance: the 1,000-box broadcast soak completes at every
// shard count with a byte-identical trace.
// ---------------------------------------------------------------------

#[test]
fn thousand_box_soak_is_identical_across_shard_counts() {
    use pandora_shard::broadcast::{build, BroadcastConfig};
    let cfg = BroadcastConfig {
        boxes: 1_000,
        fanout: 4,
        segment_interval: SimDuration::from_millis(5),
        segments: 10,
        hop_latency: SimDuration::from_micros(200),
        relay_cost: SimDuration::from_micros(40),
    };
    let deadline = SimTime::from_millis(80);
    let baseline = build(&cfg, 1).run(deadline).merged_lines();
    assert_eq!(baseline.len(), cfg.boxes);
    assert!(
        baseline.iter().skip(1).all(|l| l.contains("recv=10")),
        "soak did not complete on the single-shard baseline"
    );
    for shards in &SHARD_COUNTS[1..] {
        let got = build(&cfg, *shards).run(deadline).merged_lines();
        assert_eq!(got, baseline, "{shards} shards diverged");
    }
}

// ---------------------------------------------------------------------
// ISSUE 9: the striped multi-tree overlay broadcast — with a
// mid-broadcast interior-relay crash and repair — replays
// byte-identically at shard counts {1, 4, 8}.
// ---------------------------------------------------------------------

#[test]
fn overlay_broadcast_with_crash_is_identical_across_shard_counts() {
    use pandora_overlay::{
        build_overlay_broadcast, plan_for, CrashPlan, OverlayConfig, OverlaySummary,
    };

    let mut cfg = OverlayConfig {
        viewers: 63,
        trees: 4,
        degree: 4,
        seed: 9,
        segments: 50,
        payload_bytes: 640,
        ..OverlayConfig::default()
    };
    // Crash the first interior relay that actually parents someone, so
    // the repair path (death, graft, clawback replay) is exercised.
    let plan = plan_for(&cfg).expect("plan");
    let victim = (1..plan.members())
        .find(|&v| {
            plan.interior_tree(v)
                .is_some_and(|t| !plan.children(t, v).is_empty())
        })
        .expect("an interior relay with children");
    cfg.crash = Some(CrashPlan {
        member: victim,
        at: SimDuration::from_millis(70),
    });

    let deadline = SimTime::from_millis(340);
    let run = |shards: usize| {
        let built = build_overlay_broadcast(&cfg, shards).expect("build");
        built.cluster.run(deadline).merged_lines()
    };

    let baseline = run(1);
    let s = OverlaySummary::parse(&baseline);
    assert_eq!(s.viewers, 63);
    assert_eq!(s.crashed, 1);
    assert_eq!(s.hub_deaths, 1, "the crash went undetected");
    assert!(s.hub_grafts >= 1, "no grafts were issued");
    assert!(s.grafts_in >= 1, "no backup applied a graft");
    assert_eq!(s.lost_alive, 0, "survivors lost slices");
    assert_eq!(s.late_alive, 0, "survivors saw late slices");
    assert!(
        plan.max_depth_overall() <= plan.depth_bound(),
        "depth {} exceeds ceil(log_d n) = {}",
        plan.max_depth_overall(),
        plan.depth_bound()
    );
    for shards in [4usize, 8] {
        assert_eq!(run(shards), baseline, "{shards} shards diverged");
    }
}
