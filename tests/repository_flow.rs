//! Repository integration: record from a live box, re-segment, play back
//! into another box — the videomail flow of §4.1.

use pandora::{connect_pair, BoxConfig, OutputId, StreamKind};
use pandora_atm::HopConfig;
use pandora_audio::gen::Tone;
use pandora_repository::{is_repository_format, Repository, RepositoryCosts};
use pandora_sim::{SimTime, Simulation};

#[test]
fn record_resegment_playback_across_boxes() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("src"),
        BoxConfig::standard("dst"),
        &[HopConfig::clean(50_000_000)],
        17,
    );
    let repo = Repository::new(
        &sim.spawner(),
        "r",
        RepositoryCosts::default(),
        pair.a.log.sender(),
    );

    // Record 2 seconds of microphone.
    let mic = pair
        .a
        .start_audio_source(Box::new(Tone::new(440.0, 9_000.0)));
    pair.a
        .set_route(mic, StreamKind::Audio, vec![OutputId::Repository]);
    let tap = pair.a.take_repository_rx().unwrap();
    let rec = repo.record(tap, mic);
    sim.run_until(SimTime::from_secs(2));
    rec.stop();
    pair.a.clear_route(mic);
    assert!(rec.recorded() >= 498, "recorded {}", rec.recorded());

    // Re-segment into the 40ms format.
    let compact = repo.resegment(rec.id()).unwrap();
    let r = repo.get(compact).unwrap();
    assert!(is_repository_format(&r));
    assert!(repo.resegmentation_saving(rec.id(), compact).unwrap() > 0.4);

    // Play back into the destination box's switch; it reaches the speaker.
    let play = pair.b.alloc_stream();
    pair.b
        .set_route(play, StreamKind::Audio, vec![OutputId::Audio]);
    let received_before = pair.b.speaker.segments_received();
    repo.playback(compact, play, pair.b.injector(), 0).unwrap();
    sim.run_until(SimTime::from_secs(5));
    let received = pair.b.speaker.segments_received() - received_before;
    // ~2s of audio in 40ms segments = ~50 segments.
    assert!((45..=52).contains(&received), "played back {received}");
    assert_eq!(pair.b.speaker.segments_lost(), 0);
    // 40ms segments are 20 blocks: the clawback served ~1000 blocks.
    assert!(pair.b.speaker.clawback_stats().served >= 900);
}

#[test]
fn two_streams_recorded_together_stay_synchronised() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("src"),
        BoxConfig::standard("dst"),
        &[HopConfig::clean(50_000_000)],
        18,
    );
    let repo = Repository::new(
        &sim.spawner(),
        "r",
        RepositoryCosts::default(),
        pair.a.log.sender(),
    );
    // First mic starts now; second joins 200ms later (same repository —
    // "streams to be synchronised during playback must have been recorded
    // on the same repository, where their timestamp offsets are recorded").
    let mic1 = pair
        .a
        .start_audio_source(Box::new(Tone::new(300.0, 8_000.0)));
    pair.a
        .set_route(mic1, StreamKind::Audio, vec![OutputId::Repository]);
    let tap = pair.a.take_repository_rx().unwrap();
    // The tap carries all repository-routed streams; fan it out to the
    // two recorders.
    let (t1_tx, t1_rx) = pandora_sim::channel();
    let (t2_tx, t2_rx) = pandora_sim::channel();
    sim.spawner().spawn("tap-fanout", async move {
        while let Ok(m) = tap.recv().await {
            let _ = t1_tx.send(m.clone()).await;
            let _ = t2_tx.send(m).await;
        }
    });
    let rec1 = repo.record(t1_rx, mic1);
    sim.run_until(SimTime::from_millis(200));
    let mic2 = pair
        .a
        .start_audio_source(Box::new(Tone::new(500.0, 8_000.0)));
    pair.a
        .set_route(mic2, StreamKind::Audio, vec![OutputId::Repository]);
    let rec2 = repo.record(t2_rx, mic2);
    sim.run_until(SimTime::from_secs(2));
    rec1.stop();
    rec2.stop();
    pair.a.clear_route(mic1);
    pair.a.clear_route(mic2);

    // Synchronised playback into the destination box: both streams mix,
    // preserving the 200ms relative start.
    let p1 = pair.b.alloc_stream();
    let p2 = pair.b.alloc_stream();
    pair.b
        .set_route(p1, StreamKind::Audio, vec![OutputId::Audio]);
    pair.b
        .set_route(p2, StreamKind::Audio, vec![OutputId::Audio]);
    repo.playback_synced(vec![(rec1.id(), p1), (rec2.id(), p2)], pair.b.injector())
        .unwrap();
    sim.run_until(SimTime::from_secs(6));
    assert!(
        pair.b.speaker.max_active_streams() >= 2,
        "streams never overlapped"
    );
    let offset1 = repo.get(rec1.id()).unwrap().timestamp_offset;
    let offset2 = repo.get(rec2.id()).unwrap().timestamp_offset;
    let gap_ms = (offset2 as i64 - offset1 as i64) / 1_000_000;
    assert!((150..=260).contains(&gap_ms), "recorded offset {gap_ms}ms");
}
