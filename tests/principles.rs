//! The paper's eight principles (§2), each asserted at system level.

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig, OutputId, StreamKind};
use pandora_atm::HopConfig;
use pandora_audio::gen::{Speech, Tone};
use pandora_sim::{SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn saturating_video() -> CaptureConfig {
    CaptureConfig {
        rect: Rect::new(0, 0, 256, 192),
        rate: RateFraction::FULL,
        lines_per_segment: 64,
        mode: LineMode::Dpcm,
    }
}

#[test]
fn p2_audio_survives_video_overload() {
    let mut sim = Simulation::new();
    let cfg = BoxConfig::standard("a");
    let pair = connect_pair(
        &sim.spawner(),
        cfg,
        BoxConfig::standard("b"),
        &[HopConfig::clean(6_000_000)],
        1,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(1)));
    open_video_stream(&pair.a, &pair.b, saturating_video());
    open_video_stream(&pair.a, &pair.b, saturating_video());
    sim.run_until(SimTime::from_secs(5));
    // Audio sails through untouched.
    let sent = pair.a.net_out_stats.audio_segments();
    let got = pair.b.speaker.segments_received();
    assert!(sent > 1_000);
    assert!(got as f64 / sent as f64 > 0.97, "audio {got}/{sent}");
    // Video was shed somewhere (scheduler cap or switch buffer).
    let shed = pair.a.net_out_stats.p3_drops_total() + pair.a.switch_stats.dropped_total();
    assert!(shed > 50, "video never degraded: {shed}");
}

#[test]
fn p3_new_call_gets_through() {
    let mut sim = Simulation::new();
    let cfg = BoxConfig::standard("a");
    let pair = connect_pair(
        &sim.spawner(),
        cfg,
        BoxConfig::standard("b"),
        &[HopConfig::clean(6_000_000)],
        2,
    );
    let (old_src, _, _h) = open_video_stream(&pair.a, &pair.b, saturating_video());
    sim.run_until(SimTime::from_secs(2));
    let (new_src, _, _h2) = open_video_stream(&pair.a, &pair.b, saturating_video());
    sim.run_until(SimTime::from_secs(8));
    assert!(
        pair.a.net_out_stats.p3_drops(old_src) > pair.a.net_out_stats.p3_drops(new_src),
        "old {} vs new {}",
        pair.a.net_out_stats.p3_drops(old_src),
        pair.a.net_out_stats.p3_drops(new_src)
    );
}

#[test]
fn p4_commands_execute_during_saturation() {
    let mut sim = Simulation::new();
    let cfg = BoxConfig::standard("a");
    let pair = connect_pair(
        &sim.spawner(),
        cfg,
        BoxConfig::standard("b"),
        &[HopConfig::clean(5_000_000)],
        3,
    );
    let (src, _) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    open_video_stream(&pair.a, &pair.b, saturating_video());
    sim.run_until(SimTime::from_secs(2));
    let issued = sim.now();
    pair.a.query_stream(src);
    sim.run_until(SimTime::from_millis(2_010));
    let replies = pair
        .a
        .log
        .of_class(pandora_buffers::ReportClass::Info)
        .into_iter()
        .filter(|r| r.time >= issued)
        .count();
    assert!(replies > 0, "command starved under stream load");
}

#[test]
fn p5_p6_splitting_and_reconfiguration() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[HopConfig::clean(50_000_000)],
        4,
    );
    // Split a mic to the speaker, the repository tap and the network.
    let dst = pair.b.alloc_stream();
    pair.b
        .set_route(dst, StreamKind::Audio, vec![OutputId::Audio]);
    let mic = pair
        .a
        .start_audio_source(Box::new(Tone::new(440.0, 8_000.0)));
    pair.a.set_route(
        mic,
        StreamKind::Audio,
        vec![
            OutputId::Audio,
            OutputId::Network(pandora_atm::Vci::from_stream(dst)),
        ],
    );
    sim.run_until(SimTime::from_secs(1));
    // Live re-plumbing: add the repository destination, then remove it.
    pair.a.add_dest(mic, OutputId::Repository);
    sim.run_until(SimTime::from_secs(2));
    pair.a.remove_dest(mic, OutputId::Repository);
    sim.run_until(SimTime::from_secs(3));
    // Both the local copy and the network copy flowed without gaps.
    assert_eq!(pair.a.speaker.segments_lost(), 0);
    assert_eq!(pair.b.speaker.segments_lost(), 0);
    assert!(pair.a.speaker.segments_received() > 700);
    assert!(pair.b.speaker.segments_received() > 700);
}

#[test]
fn p7_default_latency_is_single_digit_ms() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[HopConfig::clean(50_000_000)],
        5,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    sim.run_until(SimTime::from_secs(3));
    let mut lat = pair.b.speaker.latency_ns();
    // The paper's best one-way trip was 8 ms.
    assert!(
        lat.percentile(50.0) < 10e6,
        "p50 {}ms",
        lat.percentile(50.0) / 1e6
    );
}

#[test]
fn p8_adaptation_needs_no_external_help() {
    // Local adaptation: a stream appears, the clawback bank activates by
    // itself; the stream stops, the bank deactivates by itself — "the
    // audio code does not have to be informed of the creation or deletion
    // of streams" (§3.7.2).
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[HopConfig::clean(50_000_000)],
        6,
    );
    let (src, _) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    sim.run_until(SimTime::from_secs(1));
    assert!(pair.b.speaker.max_active_streams() >= 1);
    let before = pair.b.speaker.segments_received();
    pair.a.clear_route(src);
    sim.run_until(SimTime::from_secs(2));
    // No more deliveries; the bank dried up and deactivated without any
    // command reaching the audio code.
    let after = pair.b.speaker.segments_received();
    assert!(after - before <= 3, "stream kept playing after close");
}

#[test]
fn muting_prevents_feedback_loop() {
    // §4.3 at system level: a loud remote talker ducks the local mic.
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[HopConfig::clean(50_000_000)],
        9,
    );
    // Bob talks loudly to alice; alice's mic streams back to bob.
    open_audio_shout(&pair.b, &pair.a, Box::new(Tone::new(300.0, 25_000.0)));
    let (_src, _dst) = open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 12_000.0)));
    sim.run_until(SimTime::from_secs(2));
    let muting = pair.a.muting().expect("muting enabled");
    // With a continuous loud far end, alice's muting sits in Deep.
    assert_eq!(muting.borrow().stage(), pandora_audio::MuteStage::Deep);
}
