//! System-level integration: whole boxes, whole network, whole paths.

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig};
use pandora_atm::{HopConfig, JitterModel};
use pandora_audio::gen::{Speech, Tone};
use pandora_sim::{SimDuration, SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

fn clean_hop() -> HopConfig {
    HopConfig::clean(50_000_000)
}

#[test]
fn audio_and_video_call_end_to_end() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[clean_hop()],
        42,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(1)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 128, 96),
            rate: RateFraction::new(2, 5),
            lines_per_segment: 32,
            mode: LineMode::Dpcm,
        },
    );
    sim.run_until(SimTime::from_secs(3));
    assert!(pair.b.speaker.segments_received() > 700);
    assert_eq!(pair.b.speaker.segments_lost(), 0);
    assert!(pair.b.display.frames_shown() > 25);
    assert_eq!(pair.b.display.decode_errors(), 0);
}

#[test]
fn lip_sync_headroom() {
    // §2.3 P7: "it is also irritating if the video lags appreciably behind
    // the audio". Over a clean path, audio and video latency must both be
    // modest and within the same regime (audio < video < audio + 80ms).
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[clean_hop()],
        7,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 192, 144),
            rate: RateFraction::new(2, 5),
            lines_per_segment: 48,
            mode: LineMode::Dpcm,
        },
    );
    sim.run_until(SimTime::from_secs(3));
    let mut audio = pair.b.speaker.latency_ns();
    let mut video = pair.b.display.latency_ns();
    let a50 = audio.percentile(50.0);
    let v50 = video.percentile(50.0);
    assert!(a50 < 20e6, "audio p50 {}ms", a50 / 1e6);
    assert!(
        v50 < a50 + 80e6,
        "video lags audio too far: {}ms",
        (v50 - a50) / 1e6
    );
}

#[test]
fn deterministic_replay() {
    // Two identical simulations produce identical statistics — the
    // property that makes the experiment tables exactly reproducible.
    let run = || {
        let mut sim = Simulation::new();
        let hop = HopConfig {
            bits_per_sec: 34_000_000,
            latency: SimDuration::from_millis(1),
            jitter: JitterModel::Bursty {
                base: SimDuration::from_millis(2),
                burst: SimDuration::from_millis(15),
                burst_prob: 0.05,
            },
            loss: 0.001,
        };
        let pair = connect_pair(
            &sim.spawner(),
            BoxConfig::standard("a"),
            BoxConfig::standard("b"),
            &[hop],
            1234,
        );
        open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(9)));
        sim.run_until(SimTime::from_secs(5));
        (
            pair.b.speaker.segments_received(),
            pair.b.speaker.segments_lost(),
            pair.b.speaker.concealed(),
            pair.b.speaker.clawback_stats(),
            sim.context_switches(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "simulation is not deterministic");
}

#[test]
fn drifting_clocks_absorbed_end_to_end() {
    // E7 at system level: a source crystal 1e-4 fast is absorbed by the
    // destination clawback; no unbounded growth, no cap faults.
    let mut sim = Simulation::new();
    let mut cfg_a = BoxConfig::standard("fast");
    cfg_a.clock_drift = 1e-4;
    let pair = connect_pair(
        &sim.spawner(),
        cfg_a,
        BoxConfig::standard("b"),
        &[clean_hop()],
        5,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    sim.run_until(SimTime::from_secs(60));
    let stats = pair.b.speaker.clawback_stats();
    assert_eq!(stats.over_limit, 0, "clawback cap hit under mild drift");
    // The surplus blocks produced by the fast clock are clawed back.
    assert!(stats.clawed_back > 0, "drift never clawed back");
    let delay = pair.b.speaker.delay_series().last_value().unwrap_or(0.0);
    assert!(delay < 30e6, "standing delay {}ms", delay / 1e6);
}

#[test]
fn no_buffer_leaks_across_long_mixed_run() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[clean_hop()],
        3,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Speech::new(3)));
    open_audio_shout(&pair.b, &pair.a, Box::new(Speech::new(4)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 128, 96),
            rate: RateFraction::new(1, 5),
            lines_per_segment: 32,
            mode: LineMode::DpcmSub2,
        },
    );
    sim.run_until(SimTime::from_secs(10));
    for (name, b) in [("a", &pair.a), ("b", &pair.b)] {
        let free = b.pool.free_count();
        let cap = b.pool.capacity();
        assert!(
            free > cap - 12,
            "{name}: {free}/{cap} free — leak suspected"
        );
    }
}

#[test]
fn pool_exhaustion_raises_serious_fault() {
    // §3.4: "the allocator reports this (serious) fault on its report
    // channel so that it can be logged." Shrink the pool until the input
    // handlers hit it, and look for the Fault-class report.
    let mut sim = Simulation::new();
    let mut cfg = BoxConfig::standard("tiny");
    cfg.pool_buffers = 2;
    let pair = connect_pair(
        &sim.spawner(),
        cfg,
        BoxConfig::standard("b"),
        &[clean_hop()],
        77,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 256, 192),
            rate: RateFraction::FULL,
            lines_per_segment: 32,
            mode: LineMode::Dpcm,
        },
    );
    sim.run_until(SimTime::from_secs(2));
    let faults = pair.a.log.of_class(pandora_buffers::ReportClass::Fault);
    assert!(
        !faults.is_empty(),
        "no serious-fault report from the exhausted pool"
    );
    assert!(
        faults.iter().any(|r| r.message.contains("pool exhausted")),
        "unexpected fault text: {:?}",
        faults.first()
    );
}

#[test]
fn corrupted_cells_are_contained() {
    // Inject garbage cells alongside a live stream: the net-in handler
    // reports decode errors and the stream itself is unaffected.
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[clean_hop()],
        78,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    // Garbage frames on an unrelated VCI, injected at box A's transmit
    // side through the switch-less injector path? Simpler: drive box B's
    // switch directly with undecodable traffic via the test injector.
    let injector = pair.b.injector();
    sim.spawner().spawn("garbage", async move {
        for i in 0..50u32 {
            pandora_sim::delay(pandora_sim::SimDuration::from_millis(20)).await;
            // A segment whose type is fine but routed nowhere: exercises
            // the no-route counter rather than a crash.
            let seg = pandora_segment::Segment::Test(pandora_segment::TestSegment::new(
                pandora_segment::SequenceNumber(i),
                pandora_segment::Timestamp(0),
                vec![0xAA; 100],
            ));
            if injector
                .send((pandora_segment::StreamId(999), seg))
                .await
                .is_err()
            {
                return;
            }
        }
    });
    sim.run_until(SimTime::from_secs(2));
    assert!(pair.b.switch_stats.no_route() >= 45, "garbage not counted");
    // The real stream is untouched.
    assert_eq!(pair.b.speaker.segments_lost(), 0);
    assert!(pair.b.speaker.segments_received() > 450);
    // And nothing leaked.
    assert!(pair.b.pool.free_count() > pair.b.pool.capacity() - 8);
}

#[test]
fn reports_surface_degradation_but_stay_rate_limited() {
    // Saturate a narrow link; the host log must carry overload reports but
    // be bounded by the per-class minimum period (§3.8).
    let mut sim = Simulation::new();
    let cfg = BoxConfig::standard("a");
    let pair = connect_pair(
        &sim.spawner(),
        cfg,
        BoxConfig::standard("b"),
        &[HopConfig::clean(4_000_000)],
        8,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 256, 192),
            rate: RateFraction::FULL,
            lines_per_segment: 64,
            mode: LineMode::Dpcm,
        },
    );
    sim.run_until(SimTime::from_secs(5));
    let overload = pair.a.log.of_class(pandora_buffers::ReportClass::Overload);
    assert!(
        !overload.is_empty(),
        "no overload reports despite saturation"
    );
    // 5s at a 500ms minimum period per class: a loose bound across the
    // handful of classes (P3 per-stream + switch per-stream-output).
    assert!(overload.len() <= 60, "report flood: {}", overload.len());
}
