//! Medusa ↔ Pandora interoperability: both systems speak the same segment
//! and cell formats, so an exploded-Pandora unit can feed a classic box
//! (§5.2: "the overall architecture is very similar in terms of data
//! description and buffering").

use pandora::{BoxConfig, OutputId, PandoraBox, StreamKind};
use pandora_atm::{Cell, Vci};
use pandora_audio::gen::Tone;
use pandora_medusa::{spawn_mic_unit, spawn_speaker_unit, Fabric};
use pandora_sim::{SimTime, Simulation};

#[test]
fn medusa_mic_feeds_a_pandora_box() {
    let mut sim = Simulation::new();
    let spawner = sim.spawner();
    // A Pandora box whose network input is wired straight to a Medusa mic
    // unit's cell stream.
    let (cells_tx, cells_rx) = pandora_sim::channel::<Cell>();
    let (box_tx, _void_rx, _) = pandora_atm::build_path(
        &spawner,
        "out",
        &[pandora_atm::HopConfig::clean(50_000_000)],
        1,
    );
    let boxy = PandoraBox::new(&spawner, BoxConfig::standard("classic"), box_tx, cells_rx);
    let stream = boxy.alloc_stream();
    boxy.set_route(stream, StreamKind::Audio, vec![OutputId::Audio]);
    // The unit labels its cells with the box's stream number as VCI.
    let link_cfg = pandora_sim::LinkConfig::new("unit-line", 100_000_000);
    let (unit_tx, unit_rx) = pandora_sim::link::<Cell>(&spawner, link_cfg);
    spawner.spawn("line-pump", async move {
        while let Ok(c) = unit_rx.recv().await {
            if cells_tx.send(c).await.is_err() {
                return;
            }
        }
    });
    spawn_mic_unit(
        &spawner,
        "standalone-mic",
        Box::new(Tone::new(440.0, 8_000.0)),
        2,
        Vci::from_stream(stream),
        unit_tx,
    );
    sim.run_until(SimTime::from_secs(2));
    assert!(
        boxy.speaker.segments_received() > 450,
        "box heard {} segments from the medusa unit",
        boxy.speaker.segments_received()
    );
    assert_eq!(boxy.speaker.segments_lost(), 0);
    assert_eq!(boxy.speaker.late_ticks(), 0);
}

#[test]
fn pandora_box_feeds_a_medusa_speaker() {
    let mut sim = Simulation::new();
    let spawner = sim.spawner();
    // The box's ATM output is routed through a Medusa fabric to a speaker
    // unit.
    let mut fabric = Fabric::new(&spawner, 2, 100_000_000);
    let speaker_stream = pandora_segment::StreamId(33);
    fabric.route(Vci::from_stream(speaker_stream), 1);
    let (dead_tx, dead_rx) = pandora_sim::channel::<Cell>();
    drop(dead_tx);
    let boxy = PandoraBox::new(
        &spawner,
        BoxConfig::standard("classic"),
        fabric.port_tx(0),
        dead_rx,
    );
    let mic = boxy.start_audio_source(Box::new(Tone::new(500.0, 8_000.0)));
    boxy.set_route(
        mic,
        StreamKind::Audio,
        vec![OutputId::Network(Vci::from_stream(speaker_stream))],
    );
    let (sink, _cpu) = spawn_speaker_unit(
        &spawner,
        "standalone-speaker",
        fabric.take_port_rx(1),
        pandora::PlaybackConfig::default(),
        boxy.log.sender(),
    );
    sim.run_until(SimTime::from_secs(2));
    assert!(
        sink.segments_received() > 450,
        "unit heard {} segments from the box",
        sink.segments_received()
    );
    assert_eq!(sink.segments_lost(), 0);
}
