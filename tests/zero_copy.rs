//! The two-copy invariant (§3.4, DESIGN.md §9): payload bytes are copied
//! into the slab once on input and out of it once on output; everything
//! between moves only descriptors and refcounted slab slices. The slab's
//! copy counters make the invariant checkable end to end.

use pandora::{connect_pair, open_audio_shout, open_video_stream, BoxConfig, PandoraBox};
use pandora_atm::{cells_gather, HopConfig, SlabReassembler, Vci};
use pandora_audio::gen::Tone;
use pandora_buffers::ByteSlab;
use pandora_segment::{wire, AudioSegment, Segment, SequenceNumber, SlabSegment, Timestamp};
use pandora_sim::{SimTime, Simulation};
use pandora_video::dpcm::LineMode;
use pandora_video::{CaptureConfig, RateFraction, Rect};

/// The full transport chain in miniature, with every byte accounted for:
/// input copy → gather (output copy) → cells → reassembly (input copy) →
/// in-place decode (no copy) → device output (output copy).
#[test]
fn copy_counters_track_the_exact_chain() {
    // `slab` is declared first so the arena handle outlives every region
    // reference below (drop order is reverse declaration order).
    let slab = ByteSlab::new(8, 64 * 1024);
    let seg = Segment::Audio(AudioSegment::from_blocks(
        SequenceNumber(3),
        Timestamp(64),
        (0u8..32).collect(),
    ));
    let payload = 32u64;
    let frame_bytes = seg.wire_bytes() as u64; // headers + payload

    // Input copy: the device hands its bytes to the slab, exactly once.
    let sseg = SlabSegment::from_segment(&seg, &slab).unwrap();
    assert_eq!(slab.copied_in_bytes(), payload);
    assert_eq!(slab.copied_out_bytes(), 0);

    // Output copy: the payload leaves the slab straight into cells; the
    // header is encoded into a scratch region, not copied from the slab.
    let mut scratch = vec![0u8; sseg.header.header_wire_bytes()];
    wire::encode_header_into(&sseg.header, &mut scratch);
    let cells = sseg
        .payload
        .copy_out_with(|p| cells_gather(Vci(5), &scratch, p, 0));
    assert_eq!(slab.copied_out_bytes(), payload);

    // Receive side input copy: cells append into one slab region, charged
    // when the frame freezes.
    let mut r = SlabReassembler::new(slab.clone());
    let mut out = None;
    for cell in cells {
        out = r.push(cell).or(out);
    }
    let (vci, frame) = out.expect("frame completes");
    assert_eq!(vci, Vci(5));
    assert_eq!(slab.copied_in_bytes(), payload + frame_bytes);

    // In-place decode: a header parse plus a refcounted slice — no copy.
    let decoded = wire::decode_slab(&frame).unwrap();
    assert_eq!(slab.copied_in_bytes(), payload + frame_bytes);
    assert_eq!(slab.copied_out_bytes(), payload);

    // Receive side output copy: the payload leaves for the device.
    let rebuilt = decoded.to_segment();
    assert_eq!(rebuilt, seg);
    assert_eq!(slab.copied_in_bytes(), payload + frame_bytes);
    assert_eq!(slab.copied_out_bytes(), 2 * payload);
}

/// Asserts the box moved real traffic yet copied payload bytes at most
/// twice per hop direction: once in, once out, against the cell bytes
/// that actually crossed the wire in either direction.
fn assert_two_copy_bound(name: &str, b: &PandoraBox, cells_through: u64) {
    let wire_bytes = cells_through * 48; // cell payload bytes incl. headers
    let copied = b.slab.copied_in_bytes() + b.slab.copied_out_bytes();
    assert!(
        copied <= 2 * wire_bytes,
        "{name}: {copied} payload bytes copied for {wire_bytes} wire bytes \
         — more than two copies per hop"
    );
    assert!(copied > 0, "{name}: no copies counted — no traffic flowed?");
}

#[test]
fn steady_state_hop_stays_within_two_copies() {
    let mut sim = Simulation::new();
    let pair = connect_pair(
        &sim.spawner(),
        BoxConfig::standard("a"),
        BoxConfig::standard("b"),
        &[HopConfig::clean(50_000_000)],
        21,
    );
    open_audio_shout(&pair.a, &pair.b, Box::new(Tone::new(440.0, 8_000.0)));
    open_audio_shout(&pair.b, &pair.a, Box::new(Tone::new(330.0, 8_000.0)));
    open_video_stream(
        &pair.a,
        &pair.b,
        CaptureConfig {
            rect: Rect::new(0, 0, 128, 96),
            rate: RateFraction::new(1, 5),
            lines_per_segment: 32,
            mode: LineMode::Dpcm,
        },
    );
    sim.run_until(SimTime::from_secs(3));

    // The traffic was real and clean…
    let a_cells = pair.a.net_out_stats.cells();
    let b_cells = pair.b.net_out_stats.cells();
    assert!(a_cells > 1_000, "box a sent only {a_cells} cells");
    assert!(b_cells > 1_000, "box b sent only {b_cells} cells");
    assert_eq!(pair.a.speaker.segments_lost(), 0);
    assert_eq!(pair.b.speaker.segments_lost(), 0);
    assert_eq!(pair.b.display.decode_errors(), 0);

    // …and each box saw a_cells + b_cells worth of bytes cross it (its
    // own transmissions plus the peer's arrivals), copying each payload
    // byte at most twice.
    assert_two_copy_bound("a", &pair.a, a_cells + b_cells);
    assert_two_copy_bound("b", &pair.b, a_cells + b_cells);
}
